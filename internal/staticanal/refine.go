package staticanal

import (
	"repro/internal/profile"
)

// OpaqueRefiner is the contract a points-to analysis fulfils to refine
// opaque-payload constraints (see package alias). The constraint layer
// stays agnostic of how the sets are computed; it only asks three
// questions — can this call carry an unmarshalable payload, do these two
// classes truly share mutable memory, and which pairs alias at all — and
// requires the answers to survive the zero-miss profile verifier.
type OpaqueRefiner interface {
	// PredictsTransfer reports whether a call from src to dst (class
	// names; src may be profile.MainProgram) can carry an unmarshalable
	// payload. It is the soundness side of the refinement: every
	// profile-observed non-remotable call must be predicted.
	PredictsTransfer(src, dst string) bool
	// SharedMutable reports whether the two classes may hold raw pointers
	// into one mutable abstract location, with the reason. It is the
	// precision side: only such pairs truly require co-location.
	SharedMutable(a, b string) (string, bool)
	// MutablePairs returns every truly-aliasing class pair, each ordered
	// and the list sorted.
	MutablePairs() [][2]string
	// Verify cross-checks PredictsTransfer against profile evidence;
	// misses are SeverityError findings.
	Verify(p *profile.Profile) []Finding
}

// Refined returns a copy of the constraint set with opaque-payload
// cliques replaced by the refiner's truly-aliasing pairs:
//
//   - A pair-wise constraint over an interface whose non-remotability is
//     attributable to its opaque payloads (InterfaceReport.Opaque)
//     survives only when the pair shares mutable state. Pairs over bare
//     [local] interfaces with clean signatures are untouched — their
//     non-remotability has nothing to do with payload aliasing.
//   - A fully-non-remotable class whose entire non-remotable surface is
//     attributable to opaque payloads becomes conditional: calls into it
//     weld only against callers it truly shares mutable state with.
//   - Mutable-sharing pairs no remotability constraint covered are added
//     as AliasPairs — classes aliasing through an intermediary must
//     co-locate even though they never exchange payloads directly.
//
// Pins, coverage pairs, and the interface classification are shared with
// the receiver unchanged. A nil refiner returns the receiver.
func (cs *ConstraintSet) Refined(r OpaqueRefiner) *ConstraintSet {
	if cs == nil || r == nil {
		return cs
	}
	out := &ConstraintSet{
		App:               cs.App,
		Pins:              cs.Pins,
		Interfaces:        cs.Interfaces,
		CoveragePairs:     cs.CoveragePairs,
		model:             cs.model,
		refiner:           r,
		fullyNonRemotable: make(map[string]bool),
		conditional:       make(map[string]bool),
		pairIndex:         make(map[[2]string]string),
		aliasIndex:        make(map[[2]string]string),
		coverageIndex:     cs.coverageIndex,
	}

	refinable := func(iid string) bool {
		rep := cs.Interfaces[iid]
		return rep != nil && rep.Opaque
	}

	for _, p := range cs.Pairs {
		if refinable(p.IID) {
			reason, shared := r.SharedMutable(p.A, p.B)
			if !shared {
				continue
			}
			out.addPair(p.A, p.B, p.IID, reason)
			continue
		}
		out.addPair(p.A, p.B, p.IID, p.Reason)
	}

	for class, all := range cs.fullyNonRemotable {
		if !all {
			out.fullyNonRemotable[class] = false
			continue
		}
		if cs.classHasUnrefinableNonRemotable(class) {
			out.fullyNonRemotable[class] = true
		} else {
			out.conditional[class] = true
		}
	}

	coPinned := func(a, b string) bool {
		pa, oka := out.Pins[a]
		pb, okb := out.Pins[b]
		return oka && okb && pa.Machine == pb.Machine
	}
	for _, key := range r.MutablePairs() {
		if _, dup := out.pairIndex[key]; dup {
			continue
		}
		if coPinned(key[0], key[1]) {
			continue
		}
		reason, _ := r.SharedMutable(key[0], key[1])
		out.aliasIndex[key] = reason
		out.AliasPairs = append(out.AliasPairs, Pair{A: key[0], B: key[1], Reason: reason})
	}
	return out
}

// Refiner returns the points-to refiner installed by Refined, or nil.
func (cs *ConstraintSet) Refiner() OpaqueRefiner {
	if cs == nil {
		return nil
	}
	return cs.refiner
}

// classHasUnrefinableNonRemotable reports whether the class implements a
// non-remotable interface whose verdict is NOT attributable to opaque
// payloads (a bare [local] declaration with clean signatures). Such
// classes stay outside the refinement: their welds have nothing to do
// with payload aliasing.
func (cs *ConstraintSet) classHasUnrefinableNonRemotable(class string) bool {
	cm := cs.model.Component(class)
	if cm == nil {
		return true // unknown class: stay conservative
	}
	for _, iid := range cm.Interfaces {
		if r := cs.Interfaces[iid]; r != nil && r.Remotability == NonRemotable && !r.Opaque {
			return true
		}
	}
	return false
}

// ObservedNonRemotableWeld decides whether a profile edge that carried a
// non-remotable call still welds its endpoints under the refinement. An
// unrefined set always welds (the pre-refinement behavior). A refined
// set clears the weld only when the evidence is fully explained away:
// the points-to analysis predicted the transfer (otherwise the static
// model is missing something and conservatism wins), the callee's
// non-remotability is attributable entirely to opaque payloads, and the
// pair does not truly share mutable state. src and dst are class names;
// empty means the endpoint is unclassified (the main program, or a
// class missing from the model) and the weld is kept.
func (cs *ConstraintSet) ObservedNonRemotableWeld(src, dst string) bool {
	if cs == nil || cs.refiner == nil || src == "" || dst == "" {
		return true
	}
	if !cs.refiner.PredictsTransfer(src, dst) {
		return true
	}
	if cs.classHasUnrefinableNonRemotable(dst) {
		return true
	}
	_, shared := cs.refiner.SharedMutable(src, dst)
	return shared
}
