package staticanal

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/binimg"
	"repro/internal/com"
)

// Report is the complete output of the static analyzer for one
// application binary: the metadata model summary, the interface
// classification, the derived constraint set, and any verifier findings
// accumulated by cross-checks.
type Report struct {
	App string `json:"app"`

	// Model summary.
	Components        int      `json:"components"`
	ComponentsInImage int      `json:"componentsInImage"`
	Imports           []string `json:"imports,omitempty"`
	Instrumented      bool     `json:"instrumented"`
	OrphanSections    []string `json:"orphanSections,omitempty"`
	MissingFromImage  []string `json:"missingFromImage,omitempty"`

	// Interface classification, sorted by IID.
	Interfaces []*InterfaceReport `json:"interfaces"`

	// Constraints is the derived constraint set.
	Constraints *ConstraintSet `json:"constraints"`

	// Findings accumulates verifier output (cross-checks, cut checks).
	Findings []Finding `json:"findings"`

	model *Model
}

// Analyze runs the full static pipeline — scan, classify, derive — over
// an application and its binary image. img may be nil: the original
// (un-instrumented) image is synthesized from the class registry, exactly
// what the rewriter would operate on.
func Analyze(app *com.App, img *binimg.Image) (*Report, error) {
	if app == nil {
		return nil, fmt.Errorf("staticanal: nil application")
	}
	if img == nil {
		img = binimg.BuildImage(app)
	}
	m, err := ScanImage(img, app)
	if err != nil {
		return nil, err
	}
	return analyzeModel(m)
}

// AnalyzeImage runs the pipeline over a binary image alone, recovering
// interface metadata from the configuration record's format strings — the
// paper's scenario of analyzing a shipped, instrumented binary without
// sources.
func AnalyzeImage(img *binimg.Image) (*Report, error) {
	m, err := ScanImage(img, nil)
	if err != nil {
		return nil, err
	}
	return analyzeModel(m)
}

func analyzeModel(m *Model) (*Report, error) {
	reports := ClassifyInterfaces(m.Interfaces)
	cs := Derive(m, reports)

	r := &Report{
		App:              m.App,
		Components:       len(m.Components),
		Imports:          m.Imports,
		Instrumented:     m.Instrumented,
		OrphanSections:   m.OrphanSections,
		MissingFromImage: m.MissingFromImage,
		Constraints:      cs,
		Findings:         []Finding{},
		model:            m,
	}
	for _, cm := range m.Components {
		if cm.InImage {
			r.ComponentsInImage++
		}
	}
	for _, ir := range reports {
		r.Interfaces = append(r.Interfaces, ir)
	}
	sort.Slice(r.Interfaces, func(i, j int) bool { return r.Interfaces[i].IID < r.Interfaces[j].IID })
	return r, nil
}

// Model returns the scanned metadata model behind the report.
func (r *Report) Model() *Model { return r.model }

// CountByRemotability tallies the interface classification.
func (r *Report) CountByRemotability() (remotable, conditional, nonRemotable int) {
	for _, ir := range r.Interfaces {
		switch ir.Remotability {
		case NonRemotable:
			nonRemotable++
		case ConditionallyRemotable:
			conditional++
		default:
			remotable++
		}
	}
	return
}

// AddFindings appends verifier findings to the report.
func (r *Report) AddFindings(fs ...Finding) { r.Findings = append(r.Findings, fs...) }

// WriteJSON emits the machine-readable report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText emits the human report.
func (r *Report) WriteText(w io.Writer) error {
	rem, cond, non := r.CountByRemotability()
	if _, err := fmt.Fprintf(w, "%s: %d components (%d in image), %d interfaces (%d remotable, %d conditional, %d non-remotable)\n",
		r.App, r.Components, r.ComponentsInImage, len(r.Interfaces), rem, cond, non); err != nil {
		return err
	}
	for _, s := range r.OrphanSections {
		fmt.Fprintf(w, "  orphan section: %s\n", s)
	}
	for _, c := range r.MissingFromImage {
		fmt.Fprintf(w, "  class missing from image: %s\n", c)
	}
	for _, ir := range r.Interfaces {
		if ir.Remotability == Remotable {
			continue
		}
		fmt.Fprintf(w, "  interface %-24s %s\n", ir.IID, ir.Remotability)
		for _, reason := range ir.Reasons {
			fmt.Fprintf(w, "      - %s\n", reason)
		}
	}

	pins := make([]Pin, 0, len(r.Constraints.Pins))
	for _, p := range r.Constraints.Pins {
		pins = append(pins, p)
	}
	sort.Slice(pins, func(i, j int) bool { return pins[i].Class < pins[j].Class })
	fmt.Fprintf(w, "  constraints: %d pins, %d pair-wise\n", len(pins), len(r.Constraints.Pairs))
	for _, p := range pins {
		fmt.Fprintf(w, "    pin  %-24s -> %-6s (%s)\n", p.Class, p.Machine, p.Reason)
	}
	for _, pr := range r.Constraints.Pairs {
		fmt.Fprintf(w, "    pair %s <-> %s (%s)\n", pr.A, pr.B, pr.Reason)
	}

	if len(r.Findings) == 0 {
		_, err := fmt.Fprintf(w, "  verifier: no findings\n")
		return err
	}
	fmt.Fprintf(w, "  verifier: %d finding(s), %d error(s)\n", len(r.Findings), ErrorCount(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "    %s\n", f)
	}
	return nil
}
