package staticanal_test

import (
	"bytes"
	"testing"

	"repro/internal/apps/benefits"
	"repro/internal/apps/photodraw"
	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/staticanal"
)

// FuzzScanImage feeds corrupted binary images to the metadata scanner:
// whatever the bytes decode to, scanning must return an error or a model,
// never panic.
func FuzzScanImage(f *testing.F) {
	seed := func(app *com.App, instrument bool) {
		img := binimg.BuildImage(app)
		if instrument {
			adps := core.New(app)
			if err := adps.Instrument(); err != nil {
				f.Fatal(err)
			}
			img = adps.Image
		}
		var buf bytes.Buffer
		if err := img.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(photodraw.New(), false)
	seed(photodraw.New(), true)
	seed(benefits.New(), true)

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := binimg.Decode(data)
		if err != nil {
			return
		}
		m, err := staticanal.ScanImage(img, nil)
		if err != nil {
			return
		}
		if m.Interfaces == nil {
			t.Fatal("scan returned a model with a nil registry")
		}
		// A scanned model must always classify and derive cleanly.
		reports := staticanal.ClassifyInterfaces(m.Interfaces)
		cs := staticanal.Derive(m, reports)
		if cs == nil {
			t.Fatal("derive returned nil")
		}
	})
}
