package staticanal_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/apps/benefits"
	"repro/internal/apps/octarine"
	"repro/internal/apps/photodraw"
	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/idl"
	"repro/internal/scenario"
	"repro/internal/staticanal"
)

func TestScanImagePhotodraw(t *testing.T) {
	t.Parallel()
	app := photodraw.New()
	m, err := staticanal.ScanImage(binimg.BuildImage(app), app)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) == 0 {
		t.Fatal("no components scanned")
	}
	if len(m.OrphanSections) != 0 || len(m.MissingFromImage) != 0 {
		t.Errorf("orphans %v, missing %v; want none on a clean build",
			m.OrphanSections, m.MissingFromImage)
	}
	for _, cm := range m.Components {
		if !cm.InImage {
			t.Errorf("component %s not matched to a code section", cm.Name)
		}
		if cm.SectionBytes <= 0 {
			t.Errorf("component %s has no code bytes", cm.Name)
		}
	}
	if sc := m.Component("SpriteCache"); sc == nil {
		t.Error("SpriteCache missing from model")
	} else if len(sc.Interfaces) == 0 {
		t.Error("SpriteCache has no interfaces in model")
	}
}

func TestScanImageNilImage(t *testing.T) {
	t.Parallel()
	if _, err := staticanal.ScanImage(nil, nil); err == nil {
		t.Fatal("want error for nil image")
	}
}

func TestClassifyDeclaredLocalInterfaces(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		app *com.App
		iid string
	}{
		{photodraw.New(), "ISpriteCache"},
		{photodraw.New(), "IUIElement"},
		{octarine.New(), "IWidget"},
	} {
		reports := staticanal.ClassifyInterfaces(tc.app.Interfaces)
		r := reports[tc.iid]
		if r == nil {
			t.Fatalf("%s: no report for %s", tc.app.Name, tc.iid)
		}
		if r.Remotability != staticanal.NonRemotable {
			t.Errorf("%s: %s classified %s, want non-remotable", tc.app.Name, tc.iid, r.Remotability)
		}
	}
}

func TestClassifyMixedOpaqueIsConditional(t *testing.T) {
	t.Parallel()
	// benefits' IGraphView pairs a clean PlotRow with an opaque-DC Paint:
	// calls through it may or may not marshal, so the interface is
	// conditionally remotable and marked opaque for the verifier.
	app := benefits.New()
	reports := staticanal.ClassifyInterfaces(app.Interfaces)
	r := reports["IGraphView"]
	if r == nil {
		t.Fatal("no report for IGraphView")
	}
	if r.Remotability != staticanal.ConditionallyRemotable {
		t.Errorf("IGraphView classified %s, want conditional", r.Remotability)
	}
	if !r.Opaque {
		t.Error("IGraphView not marked opaque")
	}
}

func TestClassifyFullyOpaqueInterface(t *testing.T) {
	t.Parallel()
	reg := idl.NewRegistry()
	reg.Register(&idl.InterfaceDesc{
		IID: "IShm", Name: "IShm", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Map", Params: []idl.ParamDesc{{Name: "p", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TVoid},
			{Name: "Flush", Params: []idl.ParamDesc{{Name: "p", Dir: idl.In, Type: idl.TOpaque}}, Result: idl.TInt32},
		},
	})
	r := staticanal.ClassifyInterfaces(reg)["IShm"]
	if r.Remotability != staticanal.NonRemotable {
		t.Errorf("all-opaque interface classified %s, want non-remotable", r.Remotability)
	}
}

func TestClassifyNestedOpaqueInStruct(t *testing.T) {
	t.Parallel()
	reg := idl.NewRegistry()
	reg.Register(&idl.InterfaceDesc{
		IID: "INested", Name: "INested", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Send", Params: []idl.ParamDesc{{Name: "req", Dir: idl.In, Type: idl.Struct("Req",
				idl.Field("n", idl.TInt32),
				idl.Field("handles", idl.Array(idl.TOpaque)),
			)}}, Result: idl.TVoid},
		},
	})
	r := staticanal.ClassifyInterfaces(reg)["INested"]
	if !r.Opaque {
		t.Error("opaque pointer nested in struct/array not detected")
	}
	if r.Remotability != staticanal.NonRemotable {
		t.Errorf("single-method all-opaque interface classified %s, want non-remotable", r.Remotability)
	}
}

func TestClassifyUnregisteredAndUntypedReferences(t *testing.T) {
	t.Parallel()
	reg := idl.NewRegistry()
	reg.Register(&idl.InterfaceDesc{
		IID: "IDangling", Name: "IDangling", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Bind", Params: []idl.ParamDesc{{Name: "x", Dir: idl.In, Type: idl.InterfaceType("INowhere")}}, Result: idl.TVoid},
		},
	})
	reg.Register(&idl.InterfaceDesc{
		IID: "IAny", Name: "IAny", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Accept", Params: []idl.ParamDesc{{Name: "x", Dir: idl.In, Type: idl.InterfaceType("")}}, Result: idl.TVoid},
		},
	})
	reports := staticanal.ClassifyInterfaces(reg)
	if r := reports["IDangling"]; r.Remotability != staticanal.ConditionallyRemotable {
		t.Errorf("unregistered IID reference classified %s, want conditional", r.Remotability)
	}
	if r := reports["IAny"]; r.Remotability != staticanal.ConditionallyRemotable {
		t.Errorf("untyped interface pointer classified %s, want conditional", r.Remotability)
	}
}

func TestClassifyCallbackCycle(t *testing.T) {
	t.Parallel()
	reg := idl.NewRegistry()
	reg.Register(&idl.InterfaceDesc{
		IID: "ISource", Name: "ISource", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Subscribe", Params: []idl.ParamDesc{{Name: "s", Dir: idl.In, Type: idl.InterfaceType("ISink")}}, Result: idl.TVoid},
		},
	})
	reg.Register(&idl.InterfaceDesc{
		IID: "ISink", Name: "ISink", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Resubscribe", Params: []idl.ParamDesc{{Name: "s", Dir: idl.In, Type: idl.InterfaceType("ISource")}}, Result: idl.TVoid},
		},
	})
	reports := staticanal.ClassifyInterfaces(reg)
	for _, iid := range []string{"ISource", "ISink"} {
		r := reports[iid]
		if r.Remotability != staticanal.ConditionallyRemotable {
			t.Errorf("%s in callback cycle classified %s, want conditional", iid, r.Remotability)
		}
		found := false
		for _, reason := range r.Reasons {
			if strings.Contains(reason, "callback cycle") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no callback-cycle reason in %v", iid, r.Reasons)
		}
	}
}

func TestDerivePins(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		app     *com.App
		class   string
		machine com.Machine
	}{
		{photodraw.New(), "StudioFrame", com.Client},
		{photodraw.New(), "ImageStore", com.Server},
		{benefits.New(), "BenefitsForm", com.Client},
		{benefits.New(), "Database", com.Server},
		{octarine.New(), "AppFrame", com.Client},
	} {
		rep, err := staticanal.Analyze(tc.app, nil)
		if err != nil {
			t.Fatal(err)
		}
		pin, ok := rep.Constraints.PinFor(tc.class)
		if !ok {
			t.Errorf("%s: no pin for %s", tc.app.Name, tc.class)
			continue
		}
		if pin.Machine != tc.machine {
			t.Errorf("%s: %s pinned to %s, want %s", tc.app.Name, tc.class, pin.Machine, tc.machine)
		}
		if pin.Reason == "" {
			t.Errorf("%s: pin for %s has no reason", tc.app.Name, tc.class)
		}
	}
}

func TestConstraintSetsNonEmptyForAllApps(t *testing.T) {
	t.Parallel()
	for _, name := range scenario.Apps() {
		app, err := scenario.NewApp(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := staticanal.Analyze(app, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Constraints.Empty() {
			t.Errorf("%s: empty constraint set", name)
		}
		var buf bytes.Buffer
		if err := rep.WriteText(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty text report", name)
		}
		buf.Reset()
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestDerivePairConstraints(t *testing.T) {
	t.Parallel()
	app := photodraw.New()
	rep, err := staticanal.Analyze(app, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := rep.Constraints
	// SpriteCache and SpriteIndex share the non-remotable ISpriteBuf.
	if reason, weld := cs.MustCoLocate("SpriteCache", "SpriteIndex"); !weld {
		t.Error("SpriteCache/SpriteIndex not pair-constrained")
	} else if reason == "" {
		t.Error("pair constraint has no reason")
	}
	// A class whose whole surface is non-remotable welds any caller.
	if _, weld := cs.MustCoLocate("Reader", "SpriteIndex"); !weld {
		t.Error("call into fully non-remotable SpriteIndex not welded")
	}
	// Two remotable classes stay free.
	if _, weld := cs.MustCoLocate("Reader", "Transform"); weld {
		t.Error("Reader/Transform wrongly welded")
	}
}

func TestReconstructedRegistryMatchesOriginal(t *testing.T) {
	t.Parallel()
	// Instrument the binary, then analyze the image alone: interface
	// metadata must be recovered from embedded format strings and the
	// classification must agree with the source registry.
	app := photodraw.New()
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	rep, err := staticanal.AnalyzeImage(adps.Image)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Model().ReconstructedInterfaces {
		t.Fatal("interface registry not marked reconstructed")
	}
	want := staticanal.ClassifyInterfaces(app.Interfaces)
	got := staticanal.ClassifyInterfaces(rep.Model().Interfaces)
	if len(got) != len(want) {
		t.Fatalf("reconstructed %d interfaces, want %d", len(got), len(want))
	}
	for iid, w := range want {
		g := got[iid]
		if g == nil {
			t.Errorf("%s missing from reconstructed registry", iid)
			continue
		}
		if g.Remotability != w.Remotability {
			t.Errorf("%s: reconstructed %s, original %s", iid, g.Remotability, w.Remotability)
		}
	}
}

func TestVerifierOnSeedScenarios(t *testing.T) {
	t.Parallel()
	for _, name := range scenario.Apps() {
		app, err := scenario.NewApp(name)
		if err != nil {
			t.Fatal(err)
		}
		adps := core.New(app)
		if adps.Static == nil {
			t.Fatalf("%s: pipeline has no static report", name)
		}
		if err := adps.Instrument(); err != nil {
			t.Fatal(err)
		}
		p, err := adps.ProfileScenarios(scenario.TrainingForApp(name), false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := adps.Analyze(context.Background(), p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The cut must satisfy every static constraint, and the observed
		// ICC must contain no statically unexplained non-remotable calls.
		if n := staticanal.ErrorCount(res.Findings); n != 0 {
			t.Errorf("%s: %d constraint violations: %v", name, n, res.Findings)
		}
		for _, f := range res.Findings {
			t.Errorf("%s: unexpected finding %s", name, f)
		}
		if res.Constrained == 0 {
			t.Errorf("%s: no classifications pinned", name)
		}
	}
}

// TestVerifierOctarineWithCoverageConstraints pins the verifier's
// behaviour on the largest suite application after the scenario-coverage
// gate installs its conservative constraints: the static model must
// explain every observed activation (no misses), the uncovered-edge welds
// must hold in the chosen cut, and the cross-join must stay silent — no
// warnings, no errors.
func TestVerifierOctarineWithCoverageConstraints(t *testing.T) {
	t.Parallel()
	adps := core.New(octarine.New())
	cov, prof, err := adps.CoverageReport(scenario.TrainingForApp("octarine"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Misses) != 0 {
		t.Fatalf("octarine static misses: %v", cov.Misses)
	}
	if len(cov.UncoveredEdges()) == 0 {
		t.Fatal("octarine training scenarios unexpectedly cover the whole static graph")
	}
	// One concrete uncovered edge the gate must weld: the toolbar holds
	// its buttons but never calls them on the training scenarios.
	if _, ok := adps.AnalysisOptions.Constraints.MustCoLocate("Toolbar", "ToolButton"); !ok {
		t.Error("Toolbar/ToolButton coverage weld missing")
	}

	res, err := adps.Analyze(context.Background(), prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("verifier findings with coverage constraints: %v", res.Findings)
	}
	if res.CoverageCoLocations == 0 {
		t.Error("no coverage welds took effect in the graph")
	}
	machine := func(class string) map[com.Machine]bool {
		out := make(map[com.Machine]bool)
		for id, m := range res.Distribution {
			if ci := prof.Classifications[id]; ci != nil && ci.Class == class {
				out[m] = true
			}
		}
		return out
	}
	tb, btn := machine("Toolbar"), machine("ToolButton")
	if len(tb) != 1 || len(btn) != 1 {
		t.Fatalf("split placements: Toolbar=%v ToolButton=%v", tb, btn)
	}
	for m := range tb {
		if !btn[m] {
			t.Errorf("coverage weld violated: Toolbar=%v ToolButton=%v", tb, btn)
		}
	}
}

func TestCheckCutFlagsViolations(t *testing.T) {
	t.Parallel()
	app := photodraw.New()
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	p, err := adps.ProfileScenarios(scenario.TrainingForApp("photodraw"), false)
	if err != nil {
		t.Fatal(err)
	}
	cs := adps.Static.Constraints

	// Everything on the server violates every client pin.
	allServer := make(map[string]com.Machine)
	for id := range p.Classifications {
		allServer[id] = com.Server
	}
	findings := cs.CheckCut(p, allServer)
	if staticanal.ErrorCount(findings) == 0 {
		t.Fatal("all-server placement produced no violations")
	}
	kinds := map[string]bool{}
	for _, f := range findings {
		kinds[f.Kind] = true
	}
	if !kinds[staticanal.KindPinViolation] {
		t.Error("no pin violation reported for all-server placement")
	}
}
