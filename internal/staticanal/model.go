// Package staticanal implements Coign's static binary analysis (paper §2):
// before any scenario executes, it scans application binary images and
// component metadata, classifies every interface signature as remotable,
// conditionally remotable, or non-remotable, and derives the location and
// pair-wise co-location constraints the graph-cutting algorithms must
// honor. The dynamic profile can then be cross-checked against the static
// prediction: an opaque-pointer transfer the static pass failed to predict
// is reported as a finding, never a crash.
package staticanal

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/idl"
)

// sectionPrefix is the code-section naming convention the binary rewriter
// uses: one ".text$<CLSID>" section per component class.
const sectionPrefix = ".text$"

// ComponentMeta is the static view of one component class, assembled from
// the class registry and the binary image's sections.
type ComponentMeta struct {
	Name           string      `json:"name"`
	CLSID          com.CLSID   `json:"clsid"`
	Interfaces     []string    `json:"interfaces,omitempty"`
	APIs           []string    `json:"apis,omitempty"`
	SectionBytes   int         `json:"sectionBytes"`
	InImage        bool        `json:"inImage"`
	Infrastructure bool        `json:"infrastructure,omitempty"`
	Home           com.Machine `json:"home"`
}

// Model is the component/interface metadata model built by the scanner:
// the first pass of the static analyzer.
type Model struct {
	App          string   `json:"app"`
	Imports      []string `json:"imports,omitempty"`
	Instrumented bool     `json:"instrumented"`
	Mode         string   `json:"mode,omitempty"`

	// Components lists every known class, sorted by name.
	Components []*ComponentMeta `json:"components"`
	// OrphanSections are component code sections whose CLSID is not in the
	// class registry (or any section, when no registry is available).
	OrphanSections []string `json:"orphanSections,omitempty"`
	// MissingFromImage are registered classes with no code section.
	MissingFromImage []string `json:"missingFromImage,omitempty"`

	// Interfaces is the interface metadata the analyzer will classify:
	// the application's registry when available, otherwise a registry
	// reconstructed from the image's embedded format strings.
	Interfaces *idl.Registry `json:"-"`
	// ReconstructedInterfaces notes that Interfaces was rebuilt from the
	// binary's configuration record rather than taken from the IDL.
	ReconstructedInterfaces bool `json:"reconstructedInterfaces,omitempty"`

	byName map[string]*ComponentMeta
}

// Component returns the metadata for a class name, or nil.
func (m *Model) Component(name string) *ComponentMeta { return m.byName[name] }

// ScanImage builds the metadata model from a binary image and, when
// available, the application's class and interface registries. app may be
// nil (an image recovered from disk without its application): the model is
// then limited to what the binary itself records, and interface metadata
// is reconstructed from the configuration record's format strings.
// Malformed images produce errors, never panics.
func ScanImage(img *binimg.Image, app *com.App) (*Model, error) {
	if img == nil {
		return nil, fmt.Errorf("staticanal: nil image")
	}
	m := &Model{
		App:          img.AppName,
		Imports:      append([]string(nil), img.Imports...),
		Instrumented: img.Instrumented(),
		byName:       make(map[string]*ComponentMeta),
	}
	if img.Config != nil {
		m.Mode = string(img.Config.Mode)
	}

	// Index the image's component code sections by CLSID. Activation
	// relocation records belong to the reachability analysis (package
	// reach), not this model; they are recognized, not orphaned.
	sectionSize := make(map[string]int)
	for _, s := range img.Sections {
		if strings.HasPrefix(s.Name, binimg.RelocPrefix) {
			continue
		}
		clsid, ok := strings.CutPrefix(s.Name, sectionPrefix)
		if !ok || clsid == "" {
			m.OrphanSections = append(m.OrphanSections, s.Name)
			continue
		}
		sectionSize[clsid] += len(s.Data)
	}

	if app != nil && app.Classes != nil {
		for _, c := range app.Classes.Classes() {
			cm := &ComponentMeta{
				Name:           c.Name,
				CLSID:          c.ID,
				Interfaces:     append([]string(nil), c.Interfaces...),
				APIs:           append([]string(nil), c.APIs...),
				Infrastructure: c.Infrastructure,
				Home:           c.Home,
			}
			if size, ok := sectionSize[string(c.ID)]; ok {
				cm.InImage = true
				cm.SectionBytes = size
				delete(sectionSize, string(c.ID))
			} else {
				m.MissingFromImage = append(m.MissingFromImage, c.Name)
			}
			m.Components = append(m.Components, cm)
			m.byName[c.Name] = cm
		}
		for clsid := range sectionSize {
			m.OrphanSections = append(m.OrphanSections, sectionPrefix+clsid)
		}
	} else {
		// No registry: every component section stands alone.
		for clsid, size := range sectionSize {
			cm := &ComponentMeta{
				Name:         clsid,
				CLSID:        com.CLSID(clsid),
				SectionBytes: size,
				InImage:      true,
			}
			m.Components = append(m.Components, cm)
			m.byName[cm.Name] = cm
		}
	}
	sort.Slice(m.Components, func(i, j int) bool { return m.Components[i].Name < m.Components[j].Name })
	sort.Strings(m.OrphanSections)
	sort.Strings(m.MissingFromImage)

	if app != nil && app.Interfaces != nil {
		m.Interfaces = app.Interfaces
	} else if img.Config != nil && len(img.Config.InterfaceMetadata) > 0 {
		reg, err := reconstructInterfaces(img.Config.InterfaceMetadata)
		if err != nil {
			return nil, err
		}
		m.Interfaces = reg
		m.ReconstructedInterfaces = true
	} else {
		m.Interfaces = idl.NewRegistry()
	}
	return m, nil
}

// reconstructInterfaces rebuilds an interface registry from the format
// strings embedded in a configuration record.
func reconstructInterfaces(meta map[string]string) (*idl.Registry, error) {
	reg := idl.NewRegistry()
	iids := make([]string, 0, len(meta))
	for iid := range meta {
		iids = append(iids, iid)
	}
	sort.Strings(iids)
	for _, iid := range iids {
		d, err := idl.ParseInterfaceFormat(meta[iid])
		if err != nil {
			return nil, fmt.Errorf("staticanal: config metadata for %s: %w", iid, err)
		}
		if d.IID != iid {
			return nil, fmt.Errorf("staticanal: config metadata for %s names interface %s", iid, d.IID)
		}
		if reg.Lookup(d.IID) != nil {
			return nil, fmt.Errorf("staticanal: duplicate interface %s in config metadata", d.IID)
		}
		reg.Register(d)
	}
	return reg, nil
}
