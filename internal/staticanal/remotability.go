package staticanal

import (
	"fmt"
	"sort"

	"repro/internal/idl"
)

// Remotability classifies an interface's ability to cross machines.
type Remotability int

// Remotability classes, ordered by increasing severity.
const (
	// Remotable interfaces marshal completely; their endpoints may be
	// placed on different machines.
	Remotable Remotability = iota
	// ConditionallyRemotable interfaces look marshalable but reference
	// metadata the analyzer cannot fully resolve (untyped interface
	// pointers, unregistered IIDs, callback cycles). They remote, but the
	// verifier watches them against the dynamic profile.
	ConditionallyRemotable
	// NonRemotable interfaces cannot cross machines: they pass opaque
	// pointers or are declared local. Their endpoints must be co-located.
	NonRemotable
)

// String names the class.
func (r Remotability) String() string {
	switch r {
	case Remotable:
		return "remotable"
	case ConditionallyRemotable:
		return "conditional"
	case NonRemotable:
		return "non-remotable"
	default:
		return fmt.Sprintf("remotability(%d)", int(r))
	}
}

// MarshalText makes the classification readable in JSON reports.
func (r Remotability) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// InterfaceReport is the classification of one interface.
type InterfaceReport struct {
	IID          string       `json:"iid"`
	Remotability Remotability `json:"remotability"`
	// Opaque notes that at least one method signature carries an opaque
	// pointer, so some calls through the interface cannot marshal — even
	// when the interface as a whole is only conditionally remotable.
	Opaque bool `json:"opaque,omitempty"`
	// Reasons lists why the interface was demoted from remotable, one
	// entry per independent cause.
	Reasons []string `json:"reasons,omitempty"`
}

// demote raises the severity of a report and records the cause.
func (ir *InterfaceReport) demote(r Remotability, reason string) {
	if r > ir.Remotability {
		ir.Remotability = r
	}
	ir.Reasons = append(ir.Reasons, reason)
}

// typeScan is the result of walking one type descriptor.
type typeScan struct {
	opaque  bool     // a KindOpaque occurs anywhere in the type
	untyped bool     // an interface pointer with no declared IID occurs
	refs    []string // declared IIDs of referenced interfaces
}

// scanType walks a type descriptor to any nesting depth. seen guards
// against recursive descriptors so corrupted metadata cannot hang the
// analyzer.
func scanType(t *idl.TypeDesc, sc *typeScan, seen map[*idl.TypeDesc]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	switch t.Kind {
	case idl.KindOpaque:
		sc.opaque = true
	case idl.KindInterface:
		if t.IID == "" {
			sc.untyped = true
		} else {
			sc.refs = append(sc.refs, t.IID)
		}
	case idl.KindStruct:
		for _, f := range t.Fields {
			scanType(f.Type, sc, seen)
		}
	case idl.KindArray:
		scanType(t.Elem, sc, seen)
	}
	delete(seen, t)
}

// ClassifyInterfaces runs the signature-classification pass over every
// registered interface: type-walking each method's parameters and result
// for opaque pointers, unresolvable interface references, and callback
// cycles. The returned map is keyed by IID.
func ClassifyInterfaces(reg *idl.Registry) map[string]*InterfaceReport {
	reports := make(map[string]*InterfaceReport)
	if reg == nil {
		return reports
	}
	iids := reg.IIDs()
	sort.Strings(iids)

	// refGraph records which registered interfaces each interface passes
	// in its signatures, for cycle detection.
	refGraph := make(map[string][]string)

	for _, iid := range iids {
		d := reg.Lookup(iid)
		ir := &InterfaceReport{IID: iid, Remotability: Remotable}
		reports[iid] = ir
		if !d.Remotable {
			ir.demote(NonRemotable, "declared non-remotable ([local]) in the IDL")
		}
		opaqueMethods := 0
		for mi := range d.Methods {
			m := &d.Methods[mi]
			methodOpaque := false
			scanSite := func(t *idl.TypeDesc, site string) {
				var sc typeScan
				scanType(t, &sc, make(map[*idl.TypeDesc]bool))
				if sc.opaque {
					// A single opaque method does not forbid remoting the
					// interface: calls through its clean methods still
					// marshal. Only an interface whose every method is
					// unmarshalable welds its endpoints unconditionally.
					methodOpaque = true
					ir.Opaque = true
					ir.demote(ConditionallyRemotable,
						fmt.Sprintf("method %s passes an opaque pointer in %s", m.Name, site))
				}
				if sc.untyped {
					ir.demote(ConditionallyRemotable,
						fmt.Sprintf("method %s passes an untyped interface pointer in %s", m.Name, site))
				}
				for _, ref := range sc.refs {
					if reg.Lookup(ref) == nil {
						ir.demote(ConditionallyRemotable,
							fmt.Sprintf("method %s references unregistered interface %s in %s", m.Name, ref, site))
					} else {
						refGraph[iid] = append(refGraph[iid], ref)
					}
				}
			}
			for pi := range m.Params {
				scanSite(m.Params[pi].Type, "parameter "+paramName(&m.Params[pi], pi))
			}
			scanSite(m.Result, "the result")
			if methodOpaque {
				opaqueMethods++
			}
		}
		if len(d.Methods) > 0 && opaqueMethods == len(d.Methods) {
			ir.demote(NonRemotable, "every method passes an opaque pointer")
		}
	}

	// Callback cycles: interfaces that pass each other in their
	// signatures form re-entrant call patterns. DCOM can remote them, but
	// they are the classic source of undocumented reverse channels, so
	// they are flagged conditionally remotable for the verifier to watch.
	for _, cycle := range findCycles(refGraph) {
		for _, iid := range cycle {
			reports[iid].demote(ConditionallyRemotable,
				fmt.Sprintf("callback cycle through %s", describeCycle(cycle)))
		}
	}
	return reports
}

func paramName(p *idl.ParamDesc, idx int) string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("#%d", idx)
}

// findCycles returns the strongly connected components of the interface
// reference graph that contain a cycle (size > 1, or a self-reference),
// each sorted, the list sorted by first element for determinism.
func findCycles(g map[string][]string) [][]string {
	// Tarjan's algorithm, iterative state kept in maps keyed by IID.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var next int
	var out [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sort.Strings(scc)
				out = append(out, scc)
				return
			}
			// Single node: cyclic only if it references itself.
			for _, w := range g[scc[0]] {
				if w == scc[0] {
					out = append(out, scc)
					return
				}
			}
		}
	}

	vertices := make([]string, 0, len(g))
	for v := range g {
		vertices = append(vertices, v)
	}
	sort.Strings(vertices)
	for _, v := range vertices {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func describeCycle(cycle []string) string {
	if len(cycle) == 1 {
		return cycle[0] + " (self-reference)"
	}
	s := cycle[0]
	for _, iid := range cycle[1:] {
		s += " <-> " + iid
	}
	return s
}
