package informer

import (
	"testing"

	"repro/internal/idl"
)

type fakePtr struct{ id uint64 }

func (p fakePtr) IID() string        { return "IFake" }
func (p fakePtr) InstanceID() uint64 { return p.id }

var readMethod = idl.MethodDesc{
	Name: "Read",
	Params: []idl.ParamDesc{
		{Name: "off", Dir: idl.In, Type: idl.TInt32},
		{Name: "data", Dir: idl.Out, Type: idl.TBytes},
	},
	Result: idl.TInt32,
}

var remotableIface = &idl.InterfaceDesc{
	IID: "IReader", Remotable: true, Methods: []idl.MethodDesc{readMethod},
}

var localIface = &idl.InterfaceDesc{
	IID: "ISpriteCache", Remotable: false, Methods: []idl.MethodDesc{readMethod},
}

func TestProfilingMeasuresDeepCopySize(t *testing.T) {
	t.Parallel()
	var p Profiling
	args := []idl.Value{idl.Int32(7)}
	in := p.InspectIn(remotableIface, &readMethod, args)
	if in.Bytes != DCOMHeaderBytes+4 {
		t.Errorf("in bytes = %d", in.Bytes)
	}
	if !in.Remotable {
		t.Error("plain args reported non-remotable")
	}
	rets := []idl.Value{idl.ByteBuf(make([]byte, 1000)), idl.Int32(0)}
	out := p.InspectOut(remotableIface, &readMethod, rets)
	if out.Bytes != DCOMHeaderBytes+4+1000+4 {
		t.Errorf("out bytes = %d", out.Bytes)
	}
}

func TestProfilingFindsInterfacePointers(t *testing.T) {
	t.Parallel()
	var p Profiling
	args := []idl.Value{idl.IfacePtr(fakePtr{3}),
		idl.StructVal(idl.Struct("S", idl.Field("i", idl.InterfaceType("IFake"))),
			idl.IfacePtr(fakePtr{4}))}
	in := p.InspectIn(remotableIface, &readMethod, args)
	if len(in.Pointers) != 2 {
		t.Fatalf("pointers = %v", in.Pointers)
	}
}

func TestProfilingDetectsNonRemotable(t *testing.T) {
	t.Parallel()
	var p Profiling
	// Opaque value in parameters.
	in := p.InspectIn(remotableIface, &readMethod, []idl.Value{idl.OpaquePtr("shm")})
	if in.Remotable {
		t.Error("opaque pointer reported remotable")
	}
	// Interface declared local.
	in = p.InspectIn(localIface, &readMethod, []idl.Value{idl.Int32(1)})
	if in.Remotable {
		t.Error("local interface reported remotable")
	}
	// Nil interface metadata: assume remotable.
	in = p.InspectIn(nil, nil, []idl.Value{idl.Int32(1)})
	if !in.Remotable {
		t.Error("nil metadata reported non-remotable")
	}
}

func TestDistributionOnlyScansPointers(t *testing.T) {
	t.Parallel()
	var d Distribution
	args := []idl.Value{idl.ByteBuf(make([]byte, 5000)), idl.IfacePtr(fakePtr{9})}
	in := d.InspectIn(localIface, &readMethod, args)
	if in.Bytes != 0 {
		t.Errorf("distribution informer measured %d bytes", in.Bytes)
	}
	if !in.Remotable {
		t.Error("distribution informer checked remotability")
	}
	if len(in.Pointers) != 1 || in.Pointers[0].InstanceID() != 9 {
		t.Errorf("pointers = %v", in.Pointers)
	}
	out := d.InspectOut(localIface, &readMethod, args)
	if out.Bytes != 0 || len(out.Pointers) != 1 {
		t.Error("InspectOut differs from InspectIn behaviour")
	}
}

func TestMeasureMessage(t *testing.T) {
	t.Parallel()
	if got := MeasureMessage(nil); got != DCOMHeaderBytes {
		t.Errorf("empty message = %d", got)
	}
	vals := []idl.Value{idl.String("abcd"), idl.Int64(1)}
	if got := MeasureMessage(vals); got != DCOMHeaderBytes+8+8 {
		t.Errorf("message = %d", got)
	}
}

func TestNames(t *testing.T) {
	t.Parallel()
	if (Profiling{}).Name() != "profiling" || (Distribution{}).Name() != "distribution" {
		t.Error("informer names wrong")
	}
}
