// Package informer implements Coign's interface informers (paper §3.2).
//
// The profiling informer uses the IDL metadata to walk every parameter of
// every interface call and measure precisely the number of bytes DCOM
// would transfer between machines — it accounts for most of Coign's
// profiling overhead (up to 85% of execution time). The distribution
// informer remains in the application after profiling; it examines
// parameters only far enough to identify interface pointers, and costs
// under 3%.
package informer

import (
	"repro/internal/idl"
)

// DCOMHeaderBytes is the per-message protocol overhead (ORPCTHIS/ORPCTHAT
// plus DCE RPC headers) added to every marshaled request and reply.
const DCOMHeaderBytes = 60

// CallInfo is the informer's report on one direction of a call.
type CallInfo struct {
	// Bytes is the measured message size including protocol headers; the
	// distribution informer does not measure and reports zero.
	Bytes int
	// Remotable is false when the parameters cannot cross machines (an
	// opaque pointer is present or the interface is declared local). The
	// distribution informer does not check and reports true.
	Remotable bool
	// Pointers lists the interface pointers found among the parameters,
	// used by the runtime executive to wrap interfaces as they cross
	// component boundaries.
	Pointers []idl.InterfacePtr
}

// Informer inspects call parameters.
type Informer interface {
	// Name identifies the informer ("profiling" or "distribution").
	Name() string
	// InspectIn examines the request parameters of a call.
	InspectIn(iface *idl.InterfaceDesc, method *idl.MethodDesc, args []idl.Value) CallInfo
	// InspectOut examines the reply values of a call.
	InspectOut(iface *idl.InterfaceDesc, method *idl.MethodDesc, rets []idl.Value) CallInfo
}

// Profiling is the scenario-profiling informer: full parameter walks with
// deep-copy size measurement.
type Profiling struct{}

// Name implements Informer.
func (Profiling) Name() string { return "profiling" }

// InspectIn implements Informer.
func (Profiling) InspectIn(iface *idl.InterfaceDesc, method *idl.MethodDesc, args []idl.Value) CallInfo {
	return profileInspect(iface, args)
}

// InspectOut implements Informer.
func (Profiling) InspectOut(iface *idl.InterfaceDesc, method *idl.MethodDesc, rets []idl.Value) CallInfo {
	return profileInspect(iface, rets)
}

func profileInspect(iface *idl.InterfaceDesc, vals []idl.Value) CallInfo {
	info := CallInfo{Remotable: iface == nil || iface.Remotable}
	bytes := DCOMHeaderBytes
	for i := range vals {
		vals[i].Walk(func(v *idl.Value) bool {
			switch {
			case v.Type == nil:
			case v.Type.Kind == idl.KindInterface && v.Iface != nil:
				info.Pointers = append(info.Pointers, v.Iface)
			case v.Type.Kind == idl.KindOpaque:
				info.Remotable = false
			}
			return true
		})
		bytes += vals[i].DeepSize()
	}
	info.Bytes = bytes
	return info
}

// Distribution is the lightweight post-profiling informer: it scans only
// for interface pointers so the runtime can keep wrapping interfaces, and
// measures nothing.
type Distribution struct{}

// Name implements Informer.
func (Distribution) Name() string { return "distribution" }

// InspectIn implements Informer.
func (Distribution) InspectIn(iface *idl.InterfaceDesc, method *idl.MethodDesc, args []idl.Value) CallInfo {
	return CallInfo{Remotable: true, Pointers: idl.InterfacePointers(args)}
}

// InspectOut implements Informer.
func (Distribution) InspectOut(iface *idl.InterfaceDesc, method *idl.MethodDesc, rets []idl.Value) CallInfo {
	return CallInfo{Remotable: true, Pointers: idl.InterfacePointers(rets)}
}

// MeasureMessage computes the wire size of a message (headers plus
// deep-copied payload). The distributed runtime uses it to price the
// messages that actually cross machines — the marshaling work DCOM itself
// performs for remote calls, paid only when a call is remote.
func MeasureMessage(vals []idl.Value) int {
	return DCOMHeaderBytes + idl.SizeOf(vals)
}
