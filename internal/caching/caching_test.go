package caching

import (
	"testing"

	"repro/internal/idl"
)

func TestLookupStoreRoundTrip(t *testing.T) {
	t.Parallel()
	c := New(0)
	args := []idl.Value{idl.Int32(7)}
	if _, hit := c.Lookup(1, "Query", args); hit {
		t.Fatal("hit on empty cache")
	}
	rets := []idl.Value{idl.String("answer")}
	c.Store(1, "Query", args, rets)
	got, hit := c.Lookup(1, "Query", args)
	if !hit || got[0].AsString() != "answer" {
		t.Fatalf("lookup = %v, %v", got, hit)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Len() != 1 {
		t.Fatalf("stats: hits=%d misses=%d len=%d", c.Hits(), c.Misses(), c.Len())
	}
}

func TestKeyDiscrimination(t *testing.T) {
	t.Parallel()
	c := New(0)
	c.Store(1, "Query", []idl.Value{idl.Int32(7)}, []idl.Value{idl.Int32(1)})
	// Different argument.
	if _, hit := c.Lookup(1, "Query", []idl.Value{idl.Int32(8)}); hit {
		t.Error("different args hit")
	}
	// Different instance.
	if _, hit := c.Lookup(2, "Query", []idl.Value{idl.Int32(7)}); hit {
		t.Error("different instance hit")
	}
	// Different method.
	if _, hit := c.Lookup(1, "Peek", []idl.Value{idl.Int32(7)}); hit {
		t.Error("different method hit")
	}
}

func TestRichArgumentDigests(t *testing.T) {
	t.Parallel()
	c := New(0)
	pt := idl.Struct("P", idl.Field("a", idl.TString), idl.Field("b", idl.TBytes))
	argsA := []idl.Value{idl.StructVal(pt, idl.String("x"), idl.ByteBuf([]byte{1, 2}))}
	argsB := []idl.Value{idl.StructVal(pt, idl.String("x"), idl.ByteBuf([]byte{1, 3}))}
	c.Store(1, "M", argsA, []idl.Value{idl.Int32(1)})
	if _, hit := c.Lookup(1, "M", argsB); hit {
		t.Error("nested byte difference not discriminated")
	}
	if _, hit := c.Lookup(1, "M", argsA); !hit {
		t.Error("identical nested args missed")
	}
}

type fakePtr struct {
	iid string
	id  uint64
}

func (p fakePtr) IID() string        { return p.iid }
func (p fakePtr) InstanceID() uint64 { return p.id }

func TestInterfacePointerArgs(t *testing.T) {
	t.Parallel()
	c := New(0)
	a := []idl.Value{idl.IfacePtr(fakePtr{"I", 1})}
	b := []idl.Value{idl.IfacePtr(fakePtr{"I", 2})}
	c.Store(1, "M", a, []idl.Value{idl.Int32(1)})
	if _, hit := c.Lookup(1, "M", b); hit {
		t.Error("different object references hit")
	}
	if _, hit := c.Lookup(1, "M", a); !hit {
		t.Error("same object reference missed")
	}
}

func TestOpaqueArgumentsNeverCached(t *testing.T) {
	t.Parallel()
	c := New(0)
	args := []idl.Value{idl.OpaquePtr("shm")}
	c.Store(1, "M", args, []idl.Value{idl.Int32(1)})
	if c.Len() != 0 {
		t.Fatal("opaque args stored")
	}
	if _, hit := c.Lookup(1, "M", args); hit {
		t.Fatal("opaque args hit")
	}
}

func TestOpaqueResultsNeverCached(t *testing.T) {
	t.Parallel()
	c := New(0)
	c.Store(1, "M", []idl.Value{idl.Int32(1)}, []idl.Value{idl.OpaquePtr("shm")})
	if c.Len() != 0 {
		t.Fatal("opaque results stored")
	}
}

func TestCapacityBound(t *testing.T) {
	t.Parallel()
	c := New(2)
	for i := 0; i < 5; i++ {
		c.Store(1, "M", []idl.Value{idl.Int32(int32(i))}, []idl.Value{idl.Int32(1)})
	}
	if c.Len() > 2 {
		t.Fatalf("cache exceeded bound: %d", c.Len())
	}
}
