// Package caching implements per-interface result caching, the analog of
// enabling COM semi-custom marshaling on communication-intensive
// interfaces (paper §4.3: "Coign can also selectively enable per-interface
// caching (as appropriate) through COM's semi-custom marshaling
// mechanism", and §6: "the programmer fine-tunes the distribution by
// enabling custom marshaling and caching on communication intensive
// interfaces").
//
// A method marked Cacheable in its IDL declares that its results depend
// only on its arguments (the assertion a programmer makes when switching
// an interface to custom marshaling). The runtime then answers repeated
// cross-machine calls from a proxy-side cache instead of a network round
// trip. Calls whose arguments cannot be digested (opaque pointers) are
// never cached.
package caching

import (
	"hash/fnv"

	"repro/internal/idl"
)

// key identifies one cached invocation.
type key struct {
	inst   uint64
	method string
	digest uint64
}

// Cache is a proxy-side result cache for cacheable interface methods.
type Cache struct {
	entries map[key][]idl.Value
	max     int
	hits    int64
	misses  int64
}

// New returns a cache bounded to max entries (0 means a generous default).
func New(max int) *Cache {
	if max <= 0 {
		max = 1 << 16
	}
	return &Cache{entries: make(map[key][]idl.Value), max: max}
}

// Hits returns how many cross-machine calls were answered locally.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns how many cacheable calls had to cross the network.
func (c *Cache) Misses() int64 { return c.misses }

// Len returns the number of cached results.
func (c *Cache) Len() int { return len(c.entries) }

// Lookup returns the cached results for an invocation, if present.
func (c *Cache) Lookup(inst uint64, method string, args []idl.Value) ([]idl.Value, bool) {
	d, ok := digest(args)
	if !ok {
		return nil, false
	}
	rets, hit := c.entries[key{inst, method, d}]
	if hit {
		c.hits++
		return rets, true
	}
	c.misses++
	return nil, false
}

// Store records the results of an invocation. Results containing opaque
// values are not stored (they cannot be replayed across machines).
func (c *Cache) Store(inst uint64, method string, args, rets []idl.Value) {
	if len(c.entries) >= c.max {
		return
	}
	d, ok := digest(args)
	if !ok {
		return
	}
	if !idl.RemotableValues(rets) {
		return
	}
	c.entries[key{inst, method, d}] = rets
}

// digest hashes an argument list; ok is false when the arguments contain
// values with no stable wire identity (opaque pointers).
func digest(args []idl.Value) (uint64, bool) {
	h := fnv.New64a()
	ok := true
	var buf [8]byte
	wr64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range args {
		args[i].Walk(func(v *idl.Value) bool {
			if v.Type == nil {
				wr64(0)
				return true
			}
			wr64(uint64(v.Type.Kind) + 0x9e3779b9)
			switch v.Type.Kind {
			case idl.KindOpaque:
				ok = false
				return false
			case idl.KindBool, idl.KindInt32, idl.KindInt64:
				wr64(uint64(v.Int))
			case idl.KindFloat64:
				wr64(uint64(int64(v.Float * 1e9)))
			case idl.KindString:
				h.Write([]byte(v.Str))
			case idl.KindBytes:
				h.Write(v.Bytes)
			case idl.KindInterface:
				if v.Iface != nil {
					h.Write([]byte(v.Iface.IID()))
					wr64(v.Iface.InstanceID())
				}
			case idl.KindStruct, idl.KindArray:
				wr64(uint64(len(v.Elems)))
			}
			return true
		})
		if !ok {
			return 0, false
		}
	}
	return h.Sum64(), true
}
