package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics is a minimal Prometheus-text-format registry: counters and one
// cut-duration histogram, hand-rolled on the standard library. The
// exposition format is stable and sorted, so scrapes are deterministic
// for a given state.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]float64

	// Cut-duration histogram (seconds).
	bucketBounds []float64
	bucketCounts []uint64
	histSum      float64
	histCount    uint64
}

// defaultBuckets spans the observed cut-engine range: sub-millisecond
// synthetic graphs through multi-second suite sweeps.
var defaultBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:     make(map[string]float64),
		bucketBounds: defaultBuckets,
		bucketCounts: make([]uint64, len(defaultBuckets)),
	}
}

// Inc bumps a counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add bumps a counter by v.
func (m *Metrics) Add(name string, v float64) {
	m.mu.Lock()
	m.counters[name] += v
	m.mu.Unlock()
}

// ObserveCutSeconds records one pipeline run's duration.
func (m *Metrics) ObserveCutSeconds(sec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, b := range m.bucketBounds {
		if sec <= b {
			m.bucketCounts[i]++
		}
	}
	m.histSum += sec
	m.histCount++
}

// Write renders the registry in Prometheus text exposition format. gauges
// carries point-in-time values (queue depths) computed by the caller at
// scrape time.
func (m *Metrics) Write(w io.Writer, gauges map[string]float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", name, name, m.counters[name]); err != nil {
			return err
		}
	}

	gnames := make([]string, 0, len(gauges))
	for name := range gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name]); err != nil {
			return err
		}
	}

	const hist = "coign_cut_duration_seconds"
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", hist); err != nil {
		return err
	}
	for i, b := range m.bucketBounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", hist, trimFloat(b), m.bucketCounts[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", hist, m.histCount); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", hist, m.histSum, hist, m.histCount)
	return err
}

// trimFloat renders a bucket bound the way Prometheus clients do: no
// trailing zeros, no scientific notation for these magnitudes.
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
