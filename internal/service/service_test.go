package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/pipeline"
	"repro/internal/scenario"
)

func startService(t *testing.T, workers int) (*Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	q, err := jobqueue.Open(filepath.Join(t.TempDir(), "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(q, WithWorkers(workers), WithDrainTimeout(5*time.Second))
	ts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.RunWorkers(ctx); close(done) }()
	t.Cleanup(func() {
		cancel()
		<-done
		ts.Close()
		q.Close()
	})
	return srv, ts, cancel
}

func postJob(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, b)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "done":
			return
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestEndToEndByteIdentical is the service's core contract: a job
// submitted over HTTP produces exactly the bytes pipeline.Run encodes for
// the same spec — the CLI and the service are interchangeable surfaces.
func TestEndToEndByteIdentical(t *testing.T) {
	t.Parallel()
	_, ts, _ := startService(t, 2)
	spec := pipeline.Spec{App: "synth:three-tier:1", Scenarios: scenario.TrainingForApp("synth:three-tier:1")}
	if len(spec.Scenarios) == 0 {
		t.Fatal("no training scenarios for synth:three-tier:1")
	}
	body, _ := json.Marshal(spec)
	id := postJob(t, ts, string(body))
	waitDone(t, ts, id)

	status, got := getBody(t, ts.URL+"/v1/jobs/"+id+"/result")
	if status != http.StatusOK {
		t.Fatalf("GET result = %d: %s", status, got)
	}

	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("direct pipeline.Run: %v", err)
	}
	want, err := pipeline.MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service result diverges from direct run:\n--- service ---\n%s\n--- direct ---\n%s", got, want)
	}
}

// TestSubmitValidation: malformed bodies and invalid specs are rejected
// with 400 before anything is enqueued.
func TestSubmitValidation(t *testing.T) {
	t.Parallel()
	_, ts, _ := startService(t, 1)
	for _, body := range []string{
		`{`,                                // malformed JSON
		`{"scenarios":[]}`,                 // no scenarios
		`{"scenarios":["nope"]}`,           // unknown scenario
		`{"scenarios":["o_oldwp0"],"x":1}`, // unknown field
		`{"scenarios":["o_oldwp0"],"pins":{"A":"middle"}}`, // bad pin
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestBadSyntheticSpecFailsJob: a job that validates shallowly but whose
// synthetic app spec is malformed fails cleanly, with the error surfaced
// in the job status — no panic, no wedged queue.
func TestBadSyntheticSpecFailsJob(t *testing.T) {
	t.Parallel()
	_, ts, _ := startService(t, 1)
	body := `{"app":"synth:three-tier:notanumber","scenarios":["s_browse"]}`
	id := postJob(t, ts, body)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, b := getBody(t, ts.URL+"/v1/jobs/"+id)
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == "failed" {
			if !strings.Contains(v.Error, "bad seed") {
				t.Fatalf("failure message %q does not name the bad seed", v.Error)
			}
			status, _ := getBody(t, ts.URL+"/v1/jobs/"+id+"/result")
			if status != http.StatusConflict {
				t.Fatalf("GET result of failed job = %d, want 409", status)
			}
			return
		}
		if v.State == "done" {
			t.Fatal("malformed synthetic spec unexpectedly succeeded")
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job never settled")
}

// TestMetricsExposition: after a completed job, /metrics reports the
// counters and the cut-duration histogram.
func TestMetricsExposition(t *testing.T) {
	t.Parallel()
	_, ts, _ := startService(t, 1)
	body, _ := json.Marshal(pipeline.Spec{Scenarios: []string{"o_oldwp0"}})
	id := postJob(t, ts, string(body))
	waitDone(t, ts, id)

	status, b := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d", status)
	}
	text := string(b)
	for _, want := range []string{
		"coign_jobs_queued_total 1",
		"coign_jobs_done_total 1",
		"coign_jobs_pending 0",
		"coign_jobs_running 0",
		"coign_jobs_done 1",
		"coign_jobs_failed 0",
		"coign_cut_duration_seconds_count 1",
		"coign_cut_duration_seconds_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestHealthz reports version and queue depths.
func TestHealthz(t *testing.T) {
	t.Parallel()
	_, ts, _ := startService(t, 1)
	status, b := getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("GET /healthz = %d", status)
	}
	var v struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Queue   struct {
			Pending int `json:"pending"`
		} `json:"queue"`
	}
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "ok" || v.Version == "" {
		t.Fatalf("healthz = %s", b)
	}
}

// TestUnknownJobRoutes: status and result 404 on unknown ids.
func TestUnknownJobRoutes(t *testing.T) {
	t.Parallel()
	_, ts, _ := startService(t, 1)
	for _, path := range []string{"/v1/jobs/j99999999", "/v1/jobs/j99999999/result"} {
		status, _ := getBody(t, ts.URL+path)
		if status != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, status)
		}
	}
}

// TestDrainRequeuesInFlight: cancelling the worker context with a tiny
// drain window requeues the in-flight job instead of losing or failing
// it.
func TestDrainRequeuesInFlight(t *testing.T) {
	t.Parallel()
	q, err := jobqueue.Open(filepath.Join(t.TempDir(), "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	srv := New(q, WithWorkers(1), WithDrainTimeout(time.Millisecond))
	// A heavyweight job: the full octarine bigone profile keeps the worker
	// busy long enough to cancel it mid-run.
	spec, _ := json.Marshal(pipeline.Spec{Scenarios: []string{"o_bigone"}, Seed: 1})
	job, err := q.Enqueue(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.RunWorkers(ctx); close(done) }()
	// Give the worker a moment to lease and start.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, _ := q.Get(job.ID); j != nil && j.State == jobqueue.StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool did not stop")
	}
	j, _ := q.Get(job.ID)
	if j.State == jobqueue.StateDone {
		return // fast machine finished the job before the drain cut in — also fine
	}
	if j.State != jobqueue.StatePending {
		t.Fatalf("in-flight job after drain = %s (error %q), want pending (requeued) or done", j.State, j.Error)
	}
}

// TestDrainDeadLettersExhaustedJob: with a single-attempt budget, the
// drain requeue dead-letters the in-flight job, and the dead verdict is
// visible in the status view, the result endpoint, and the metrics.
func TestDrainDeadLettersExhaustedJob(t *testing.T) {
	t.Parallel()
	q, err := jobqueue.Open(filepath.Join(t.TempDir(), "jobs.jsonl"), jobqueue.WithMaxAttempts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	srv := New(q, WithWorkers(1), WithDrainTimeout(time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec, _ := json.Marshal(pipeline.Spec{Scenarios: []string{"o_bigone"}, Seed: 1})
	job, err := q.Enqueue(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { srv.RunWorkers(ctx); close(done) }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, _ := q.Get(job.ID); j != nil && j.State == jobqueue.StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool did not stop")
	}
	j, _ := q.Get(job.ID)
	if j.State == jobqueue.StateDone {
		t.Skip("fast machine finished the job before the drain cut in")
	}
	if j.State != jobqueue.StateDead {
		t.Fatalf("in-flight job after exhausted drain = %s (error %q), want dead", j.State, j.Error)
	}

	code, body := getBody(t, ts.URL+"/v1/jobs/"+job.ID)
	if code != http.StatusOK || !strings.Contains(string(body), `"state": "dead"`) {
		t.Fatalf("status view = %d: %s", code, body)
	}
	code, body = getBody(t, ts.URL+"/v1/jobs/"+job.ID+"/result")
	if code != http.StatusConflict || !strings.Contains(string(body), "dead") {
		t.Fatalf("result of dead job = %d: %s", code, body)
	}
	code, body = getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK ||
		!strings.Contains(string(body), "coign_jobs_dead 1") ||
		!strings.Contains(string(body), "coign_jobs_dead_total 1") {
		t.Fatalf("metrics after dead-letter = %d:\n%s", code, body)
	}
}

func TestMetricsWriteDeterministic(t *testing.T) {
	t.Parallel()
	m := NewMetrics()
	m.Inc("b_total")
	m.Inc("a_total")
	m.ObserveCutSeconds(0.003)
	var x, y bytes.Buffer
	if err := m.Write(&x, map[string]float64{"g": 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(&y, map[string]float64{"g": 1}); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatal("metrics exposition is not deterministic")
	}
	if !strings.Contains(x.String(), "a_total 1") || strings.Index(x.String(), "a_total") > strings.Index(x.String(), "b_total") {
		t.Fatalf("counters not sorted:\n%s", x.String())
	}
}
