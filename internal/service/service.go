// Package service exposes the Coign pipeline as a long-running job
// service: an HTTP API accepts partitioning requests (pipeline.Spec
// bodies), a crash-safe jobqueue persists them, and a worker pool drives
// each through pipeline.Run. A job's result is the pipeline's canonical
// JSON, stored verbatim in the journal and served verbatim — the service
// returns byte-for-byte what `coign run -json` prints for the same spec.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/pipeline"
	"repro/internal/version"
)

// Server wires the queue, the worker pool, and the HTTP API together.
type Server struct {
	queue   *jobqueue.Queue
	workers int
	metrics *Metrics
	// drain bounds how long Shutdown waits for in-flight jobs before
	// cancelling them; cancelled jobs are requeued, not lost.
	drain time.Duration
}

// Option tweaks a Server.
type Option func(*Server)

// WithWorkers sets the worker-pool width (default 2, minimum 1).
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithDrainTimeout bounds graceful shutdown (default 30s).
func WithDrainTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.drain = d
		}
	}
}

// New returns a Server over an opened queue.
func New(q *jobqueue.Queue, opts ...Option) *Server {
	s := &Server{queue: q, workers: 2, metrics: NewMetrics(), drain: 30 * time.Second}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Metrics exposes the registry (the worker pool and handlers share it).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// jobView is the status representation served over HTTP.
type jobView struct {
	ID      string         `json:"id"`
	State   jobqueue.State `json:"state"`
	Attempt int            `json:"attempt,omitempty"`
	Error   string         `json:"error,omitempty"`
	Version string         `json:"version"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a pipeline.Spec, normalizes it, and enqueues the
// canonical form. The job is acknowledged only after the queue's journal
// fsync — a 202 means the job survives a crash.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec pipeline.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	norm, err := spec.Normalized()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	payload, err := json.Marshal(norm)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding spec: %v", err)
		return
	}
	job, err := s.queue.Enqueue(payload)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "enqueue: %v", err)
		return
	}
	s.metrics.Inc("coign_jobs_queued_total")
	writeJSON(w, http.StatusAccepted, jobView{ID: job.ID, State: job.State, Version: version.String()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jobView{
		ID: job.ID, State: job.State, Attempt: job.Attempt, Error: job.Error,
		Version: version.String(),
	})
}

// handleResult serves a finished job's canonical result bytes verbatim.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch job.State {
	case jobqueue.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(job.Result) //nolint:errcheck // streaming to client
	case jobqueue.StateFailed:
		writeError(w, http.StatusConflict, "job %s failed: %s", job.ID, job.Error)
	case jobqueue.StateDead:
		writeError(w, http.StatusConflict, "job %s is dead: %s", job.ID, job.Error)
	default:
		writeError(w, http.StatusConflict, "job %s is %s; result not ready", job.ID, job.State)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c := s.queue.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": version.String(),
		"go":      version.Go(),
		"queue":   c,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c := s.queue.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.Write(w, map[string]float64{ //nolint:errcheck // streaming to client
		"coign_jobs_pending": float64(c.Pending),
		"coign_jobs_running": float64(c.Running),
		"coign_jobs_done":    float64(c.Done),
		"coign_jobs_failed":  float64(c.Failed),
		"coign_jobs_dead":    float64(c.Dead),
	})
}

// RunWorkers runs the worker pool until ctx is cancelled, then drains:
// leasing stops immediately, in-flight jobs get up to the drain timeout
// to finish, and any still running are cancelled and requeued. Returns
// after the pool is fully stopped.
func (s *Server) RunWorkers(ctx context.Context) {
	jobsCtx, cancelJobs := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerLoop(ctx, jobsCtx)
		}()
	}
	// Drain sequencing: wait for the stop signal, give in-flight jobs the
	// grace window, then cut them over to cancellation.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		cancelJobs()
		return
	case <-ctx.Done():
	}
	select {
	case <-done:
	case <-time.After(s.drain):
		cancelJobs()
		<-done
	}
	cancelJobs()
}

// workerLoop leases and executes jobs until leaseCtx is cancelled. Jobs
// themselves run under jobCtx so the drain window, not the lease stop,
// decides when execution is interrupted.
func (s *Server) workerLoop(leaseCtx, jobCtx context.Context) {
	for {
		job, err := s.queue.TryLease()
		if err != nil {
			return // queue closed
		}
		if job == nil {
			select {
			case <-leaseCtx.Done():
				return
			case <-s.queue.Wake():
				continue
			case <-time.After(250 * time.Millisecond):
				// Fallback poll: a wake pulse can be consumed by a sibling
				// worker that then leases only one of several new jobs.
				continue
			}
		}
		s.execute(jobCtx, job)
		if leaseCtx.Err() != nil {
			return
		}
	}
}

// execute runs one job through the pipeline and settles it. A job killed
// by drain cancellation is requeued — the next serve picks it up — while
// a bad spec or a pipeline error fails it permanently.
func (s *Server) execute(ctx context.Context, job *jobqueue.Job) {
	var spec pipeline.Spec
	if err := json.Unmarshal(job.Payload, &spec); err != nil {
		s.fail(job, fmt.Sprintf("decoding job payload: %v", err))
		return
	}
	res, err := pipeline.Run(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			// Drain cancellation, not a bad job: put it back. The queue may
			// dead-letter it instead if the retry budget is spent.
			if rqErr := s.queue.Requeue(job.ID, job.Attempt); rqErr == nil {
				if j, ok := s.queue.Get(job.ID); ok && j.State == jobqueue.StateDead {
					s.metrics.Inc("coign_jobs_dead_total")
				}
				return
			}
			// Requeue can only fail if the lease is already stale; fall
			// through and record the failure.
		}
		s.fail(job, err.Error())
		return
	}
	b, err := pipeline.MarshalResult(res)
	if err != nil {
		s.fail(job, err.Error())
		return
	}
	if err := s.queue.Finish(job.ID, job.Attempt, b); err == nil {
		s.metrics.Inc("coign_jobs_done_total")
		s.metrics.ObserveCutSeconds(res.CutDuration.Seconds())
	}
}

func (s *Server) fail(job *jobqueue.Job, msg string) {
	// Journal messages stay single-line.
	msg = strings.ReplaceAll(msg, "\n", " ")
	if err := s.queue.Fail(job.ID, job.Attempt, msg); err == nil {
		s.metrics.Inc("coign_jobs_failed_total")
	}
}
