package reach

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/profile"
	"repro/internal/staticanal"
)

// SiteCoverage is one static activation site with its scenario-coverage
// verdict.
type SiteCoverage struct {
	Site
	Covered bool `json:"covered"`
}

// EdgeCoverage is one static ICC edge with its scenario-coverage verdict.
type EdgeCoverage struct {
	Edge
	Covered bool `json:"covered"`
}

// Miss is an observation the static analysis failed to predict — the
// reverse direction of the coverage diff. Misses indicate stale or
// incomplete activation metadata and should be fixed at the source.
type Miss struct {
	Kind   string `json:"kind"` // "site" or "edge"
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Detail string `json:"detail"`
}

// Coverage is the diff between the static reachability graph and profiled
// scenario data: which statically possible activation sites and ICC edges
// the training scenarios actually exercised.
type Coverage struct {
	App        string         `json:"app"`
	Classifier string         `json:"classifier,omitempty"`
	Scenarios  []string       `json:"scenarios,omitempty"`
	Sites      []SiteCoverage `json:"sites"`
	Edges      []EdgeCoverage `json:"edges"`
	Misses     []Miss         `json:"misses,omitempty"`
}

// Coverage joins the static graph with a profile. The activation call
// paths recorded per classification (profile.ClassificationInfo.Path) let
// the join attribute each observed activation to its effective creator —
// the innermost non-factory frame — so sites reached through generic
// factories land on the class that requested them.
func (g *Graph) Coverage(p *profile.Profile) *Coverage {
	cov := &Coverage{App: g.App}
	if p != nil {
		cov.Classifier = p.Classifier
		cov.Scenarios = append(cov.Scenarios, p.Scenarios...)
	}

	// Observed activation sites: (effective creator class, target class).
	observedSites := make(map[[2]string]bool)
	// Observed ICC edges at class-pair level.
	observedEdges := make(map[[2]string]bool)
	classOf := func(id string) string {
		if id == profile.MainProgram {
			return profile.MainProgram
		}
		if p == nil {
			return ""
		}
		if ci := p.Classifications[id]; ci != nil {
			return ci.Class
		}
		return ""
	}
	if p != nil {
		for _, id := range p.ClassificationIDs() {
			ci := p.Classifications[id]
			creator := g.EffectiveCreator(ci.Path)
			key := [2]string{creator, ci.Class}
			if observedSites[key] {
				continue
			}
			observedSites[key] = true
			if !g.siteIndex[key] {
				detail := "observed activation not statically predicted"
				if !g.reachable[ci.Class] {
					detail = "activated class is statically unreachable"
				}
				cov.Misses = append(cov.Misses, Miss{
					Kind: "site", Src: creator, Dst: ci.Class, Detail: detail,
				})
			}
		}
		for k := range p.Edges {
			src, dst := classOf(k.Src), classOf(k.Dst)
			if src == "" || dst == "" || src == dst || dst == profile.MainProgram {
				continue
			}
			key := [2]string{src, dst}
			if observedEdges[key] {
				continue
			}
			observedEdges[key] = true
			// A dynamic factory's communication partners are data, not
			// code: the static graph deliberately predicts no out-edges for
			// it, so its observed calls are not metadata staleness.
			if g.dynamic[src] {
				continue
			}
			if !g.edgeIndex[key] {
				cov.Misses = append(cov.Misses, Miss{
					Kind: "edge", Src: src, Dst: dst,
					Detail: "observed communication not statically predicted",
				})
			}
		}
	}
	sort.Slice(cov.Misses, func(i, j int) bool {
		a, b := &cov.Misses[i], &cov.Misses[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})

	for _, s := range g.Sites {
		cov.Sites = append(cov.Sites, SiteCoverage{
			Site:    s,
			Covered: observedSites[[2]string{s.Creator, s.Target}],
		})
	}
	for _, e := range g.Edges {
		cov.Edges = append(cov.Edges, EdgeCoverage{
			Edge:    e,
			Covered: observedEdges[[2]string{e.Src, e.Dst}],
		})
	}
	return cov
}

// SitesCovered returns (covered, total) activation-site counts.
func (c *Coverage) SitesCovered() (covered, total int) {
	for _, s := range c.Sites {
		total++
		if s.Covered {
			covered++
		}
	}
	return covered, total
}

// EdgesCovered returns (covered, total) ICC-edge counts.
func (c *Coverage) EdgesCovered() (covered, total int) {
	for _, e := range c.Edges {
		total++
		if e.Covered {
			covered++
		}
	}
	return covered, total
}

// Percent is the combined scenario-coverage metric: exercised sites and
// edges over all statically possible ones. An application with no static
// sites or edges is vacuously fully covered.
func (c *Coverage) Percent() float64 {
	sc, st := c.SitesCovered()
	ec, et := c.EdgesCovered()
	if st+et == 0 {
		return 100
	}
	return 100 * float64(sc+ec) / float64(st+et)
}

// UncoveredEdges returns the statically-reachable-but-never-exercised ICC
// edges, the input to conservative co-location constraints.
func (c *Coverage) UncoveredEdges() []Edge {
	var out []Edge
	for _, e := range c.Edges {
		if !e.Covered {
			out = append(out, e.Edge)
		}
	}
	return out
}

// UncoveredSites returns the statically possible activation sites no
// training scenario exercised.
func (c *Coverage) UncoveredSites() []Site {
	var out []Site
	for _, s := range c.Sites {
		if !s.Covered {
			out = append(out, s.Site)
		}
	}
	return out
}

// InstallConstraints adds one conservative co-location pair per uncovered
// class-to-class edge to the constraint set: the profile recorded no
// traffic for the edge, so the partitioner has no cost evidence, and the
// safe assumption is that crossing it would be expensive. Edges from the
// main program are reported but never installed — the main program is
// permanently on the client, and welding callees to it would pre-empt the
// cut rather than guard it. Returns the number of pairs added.
func (c *Coverage) InstallConstraints(cs *staticanal.ConstraintSet) int {
	n := 0
	for _, e := range c.UncoveredEdges() {
		if e.Src == profile.MainProgram || e.Dst == profile.MainProgram {
			continue
		}
		reason := fmt.Sprintf("statically reachable ICC edge never exercised by training scenarios (%s)", e.Provenance)
		if cs.AddCoveragePair(e.Src, e.Dst, e.IID, reason) {
			n++
		}
	}
	return n
}

// WriteText renders the coverage report for humans.
func (c *Coverage) WriteText(w io.Writer) error {
	sc, st := c.SitesCovered()
	ec, et := c.EdgesCovered()
	if _, err := fmt.Fprintf(w, "%s: activation coverage %.1f%% (sites %d/%d, edges %d/%d)\n",
		c.App, c.Percent(), sc, st, ec, et); err != nil {
		return err
	}
	for _, s := range c.Sites {
		if s.Covered {
			continue
		}
		if _, err := fmt.Fprintf(w, "  uncovered site: %s -> %s (%s)\n",
			s.Creator, s.Target, s.Provenance); err != nil {
			return err
		}
	}
	for _, e := range c.Edges {
		if e.Covered {
			continue
		}
		if _, err := fmt.Fprintf(w, "  uncovered edge: %s -> %s via %s (%s)\n",
			e.Src, e.Dst, e.IID, e.Provenance); err != nil {
			return err
		}
	}
	for _, m := range c.Misses {
		if _, err := fmt.Fprintf(w, "  static miss (%s): %s -> %s: %s\n",
			m.Kind, m.Src, m.Dst, m.Detail); err != nil {
			return err
		}
	}
	return nil
}
