package reach_test

import (
	"testing"

	"repro/internal/apps/quickstart"
	"repro/internal/binimg"
	"repro/internal/reach"
)

// FuzzReachScan feeds arbitrary bytes into an activation relocation
// section. The scanner must either parse them or return an error — a
// corrupted image must never panic the analysis.
func FuzzReachScan(f *testing.F) {
	f.Add("<main>", []byte("coign-reloc v1\nactivate CLSID_Crunch\n"))
	f.Add("CLSID_Crunch", []byte("coign-reloc v1\ndynamic\nactivate CLSID_View\n"))
	f.Add("", []byte("coign-reloc v1\n"))
	f.Add("CLSID_Crunch", []byte("not a record"))
	f.Add("CLSID_Crunch", []byte("coign-reloc v1\nactivate \n"))
	f.Add("CLSID_Crunch", []byte("coign-reloc v1\r\nactivate CLSID_Store\n"))
	f.Add("<main>", []byte{0x00, 0xff, 0xfe})

	f.Fuzz(func(t *testing.T, owner string, payload []byte) {
		app := quickstart.New()
		img := binimg.BuildImage(app)
		img.Sections = append(img.Sections, binimg.Section{
			Name: binimg.RelocPrefix + owner,
			Data: payload,
		})
		g, err := reach.Scan(img, app)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph without error")
		}
		// A successful scan must still be internally consistent.
		for _, s := range g.Sites {
			if !g.HasSite(s.Creator, s.Target) {
				t.Fatalf("site list and index disagree on %v", s)
			}
		}
		for _, e := range g.Edges {
			if !g.HasEdge(e.Src, e.Dst) {
				t.Fatalf("edge list and index disagree on %v", e)
			}
		}
	})
}
