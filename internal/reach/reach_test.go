package reach_test

import (
	"strings"
	"testing"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
	"repro/internal/reach"
)

// flowApp builds a minimal application exercising both interface-flow
// rules: IMaker.Get returns an IWidget (return flow hands the caller the
// maker's widget), and ISink.Register accepts an IWidget (callback flow
// hands the sink the caller's widget).
func flowApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IMaker", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Get", Result: idl.InterfaceType("IWidget")},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IWidget", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Poke", Result: idl.TInt32}},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ISink", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Register", Params: []idl.ParamDesc{
				{Name: "w", Dir: idl.In, Type: idl.InterfaceType("IWidget")},
			}, Result: idl.TInt32},
		},
	})

	classes := com.NewClassRegistry()
	reg := func(name string, iids []string, targets ...com.CLSID) {
		classes.Register(&com.Class{
			ID: com.CLSID("CLSID_" + name), Name: name, Interfaces: iids,
			Activations: targets,
			New:         func() com.Object { return com.ObjectFunc(nil) },
		})
	}
	reg("Maker", []string{"IMaker"}, "CLSID_Widget")
	reg("Widget", []string{"IWidget"})
	reg("Sink", []string{"ISink"})
	reg("Orphan", []string{"IWidget"}) // registered but never activated

	return &com.App{
		Name: "flow", Classes: classes, Interfaces: ifaces,
		MainActivations: []com.CLSID{"CLSID_Maker", "CLSID_Sink"},
	}
}

func scan(t *testing.T, app *com.App) *reach.Graph {
	t.Helper()
	g, err := reach.Scan(binimg.BuildImage(app), app)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScanSitesAndReachability(t *testing.T) {
	t.Parallel()
	g := scan(t, flowApp())

	wantSites := [][2]string{
		{profile.MainProgram, "Maker"},
		{profile.MainProgram, "Sink"},
		{"Maker", "Widget"},
	}
	if len(g.Sites) != len(wantSites) {
		t.Fatalf("sites = %v, want %d", g.Sites, len(wantSites))
	}
	for _, w := range wantSites {
		if !g.HasSite(w[0], w[1]) {
			t.Errorf("missing site %s -> %s", w[0], w[1])
		}
	}
	for _, s := range g.Sites {
		if !strings.Contains(s.Provenance, binimg.RelocPrefix) {
			t.Errorf("site %s -> %s lacks relocation provenance: %q", s.Creator, s.Target, s.Provenance)
		}
	}
	if want := []string{"Maker", "Sink", "Widget"}; len(g.Reachable) != 3 ||
		g.Reachable[0] != want[0] || g.Reachable[1] != want[1] || g.Reachable[2] != want[2] {
		t.Errorf("reachable = %v, want %v", g.Reachable, want)
	}
	if len(g.Unreachable) != 1 || g.Unreachable[0] != "Orphan" {
		t.Errorf("unreachable = %v, want [Orphan]", g.Unreachable)
	}
	if g.IsReachable("Orphan") || !g.IsReachable("Widget") {
		t.Error("IsReachable disagrees with Reachable list")
	}
}

func TestInterfaceFlowFixedPoint(t *testing.T) {
	t.Parallel()
	g := scan(t, flowApp())

	// Return flow: the main program holds Maker, IMaker.Get returns an
	// IWidget, and Maker holds a Widget — so main can hold the Widget.
	if !g.HasEdge(profile.MainProgram, "Widget") {
		t.Fatalf("no main -> Widget edge from return flow; edges = %v", g.Edges)
	}
	// Callback flow: the main program holds Sink, ISink.Register accepts
	// an IWidget, so anything main holds that travels as IWidget — the
	// Widget it got from Maker — flows into Sink.
	if !g.HasEdge("Sink", "Widget") {
		t.Fatalf("no Sink -> Widget edge from callback flow; edges = %v", g.Edges)
	}
	var gotReturn, gotCallback bool
	for _, e := range g.Edges {
		switch {
		case e.Src == profile.MainProgram && e.Dst == "Widget":
			gotReturn = e.IID == "IWidget" && strings.Contains(e.Provenance, "returned by IMaker.Get")
		case e.Src == "Sink" && e.Dst == "Widget":
			gotCallback = e.IID == "IWidget" && strings.Contains(e.Provenance, "received via ISink.Register")
		}
	}
	if !gotReturn || !gotCallback {
		t.Errorf("flow provenance wrong (return %v, callback %v): %v", gotReturn, gotCallback, g.Edges)
	}
	// The Widget holds nothing and the Orphan is unreachable: neither may
	// be an edge source.
	for _, e := range g.Edges {
		if e.Src == "Widget" || e.Src == "Orphan" || e.Dst == "Orphan" {
			t.Errorf("impossible edge %v", e)
		}
	}
}

// dynApp models the mention discipline around a generic factory: the
// factory's activation record is dynamic, and the requesting class lists
// the factory-built CLSID in its own record.
func dynApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IFactory", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Make", Result: idl.InterfaceType("IGadget")},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IGadget", Remotable: true,
		Methods: []idl.MethodDesc{{Name: "Spin", Result: idl.TInt32}},
	})

	classes := com.NewClassRegistry()
	nop := func() com.Object { return com.ObjectFunc(nil) }
	classes.Register(&com.Class{
		ID: "CLSID_Factory", Name: "Factory", Interfaces: []string{"IFactory"},
		DynamicActivation: true,
		Activations:       []com.CLSID{"CLSID_Gadget"},
		New:               nop,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Requester", Name: "Requester", Interfaces: []string{"IGadget"},
		Activations: []com.CLSID{"CLSID_Gadget"},
		New:         nop,
	})
	classes.Register(&com.Class{
		ID: "CLSID_Gadget", Name: "Gadget", Interfaces: []string{"IGadget"}, New: nop,
	})

	return &com.App{
		Name: "dyn", Classes: classes, Interfaces: ifaces,
		MainActivations: []com.CLSID{"CLSID_Factory", "CLSID_Requester"},
	}
}

func TestDynamicFactoryEdgeTransparency(t *testing.T) {
	t.Parallel()
	g := scan(t, dynApp())

	if !g.IsDynamicCreator("Factory") || g.IsDynamicCreator("Requester") {
		t.Fatalf("dynamic creators = %v, want [Factory]", g.DynamicCreators)
	}
	// A dynamic factory's partners are data, not code: no predicted
	// out-edges, and no return flow out of it either.
	for _, e := range g.Edges {
		if e.Src == "Factory" {
			t.Errorf("dynamic factory has out-edge %v", e)
		}
		if e.Src == profile.MainProgram && e.Dst == "Gadget" {
			t.Errorf("return flow leaked through dynamic factory: %v", e)
		}
	}
	// Mention discipline supplies the flow instead.
	if !g.HasSite("Requester", "Gadget") || !g.HasEdge("Requester", "Gadget") {
		t.Error("requester's own mention did not seed its site and edge")
	}
}

func TestEffectiveCreator(t *testing.T) {
	t.Parallel()
	g := scan(t, dynApp())
	cases := []struct {
		path []string
		want string
	}{
		{nil, profile.MainProgram},                      // direct main activation
		{[]string{"Requester"}, "Requester"},            // plain component creator
		{[]string{"Factory", "Requester"}, "Requester"}, // factory skipped
		{[]string{"Factory"}, profile.MainProgram},      // fully dynamic path
		{[]string{"Factory", "Factory"}, profile.MainProgram},
	}
	for _, c := range cases {
		if got := g.EffectiveCreator(c.path); got != c.want {
			t.Errorf("EffectiveCreator(%v) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestScanRejectsMalformedImages(t *testing.T) {
	t.Parallel()
	app := flowApp()

	if _, err := reach.Scan(nil, app); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := reach.Scan(binimg.BuildImage(app), nil); err == nil {
		t.Error("nil app accepted")
	}

	cases := []struct {
		name    string
		section binimg.Section
	}{
		{"empty owner", binimg.Section{Name: binimg.RelocPrefix, Data: binimg.EncodeReloc(false, nil)}},
		{"missing header", binimg.Section{Name: binimg.RelocPrefix + "CLSID_Maker", Data: []byte("activate CLSID_Widget\n")}},
		{"unknown directive", binimg.Section{Name: binimg.RelocPrefix + "CLSID_Maker", Data: []byte("coign-reloc v1\ndeactivate X\n")}},
		{"empty target", binimg.Section{Name: binimg.RelocPrefix + "CLSID_Maker", Data: []byte("coign-reloc v1\nactivate \n")}},
	}
	for _, c := range cases {
		img := binimg.BuildImage(app)
		img.Sections = append(img.Sections, c.section)
		if _, err := reach.Scan(img, app); err == nil {
			t.Errorf("%s: corrupted image accepted", c.name)
		}
	}
}

func TestStaleMetadataReportsUnknownTargets(t *testing.T) {
	t.Parallel()
	app := flowApp()
	app.MainActivations = append(app.MainActivations, "CLSID_Gone")
	g := scan(t, app)
	if len(g.UnknownTargets) != 1 || g.UnknownTargets[0] != "CLSID_Gone" {
		t.Fatalf("unknown targets = %v, want [CLSID_Gone]", g.UnknownTargets)
	}
}

// fakeProfile assembles a profile by hand: classifications with
// activation paths, and class-level communication edges.
func fakeProfile(app string, classes map[string][]string, edges [][2]string) *profile.Profile {
	p := profile.New(app, "ifcb")
	for id, pathAndClass := range classes {
		p.Classifications[id] = &profile.ClassificationInfo{
			ID: id, Class: pathAndClass[0], Instances: 1, Path: pathAndClass[1:],
		}
	}
	for _, e := range edges {
		p.Edge(e[0], e[1]).Calls++
	}
	return p
}

func TestCoverageJoin(t *testing.T) {
	t.Parallel()
	g := scan(t, flowApp())

	// Exercise the Maker site and the main->Maker call edge only; leave
	// Sink, Widget, and every flow edge unprofiled.
	p := fakeProfile("flow",
		map[string][]string{"m1": {"Maker"}},
		[][2]string{{profile.MainProgram, "m1"}},
	)
	cov := g.Coverage(p)
	if len(cov.Misses) != 0 {
		t.Fatalf("unexpected misses: %v", cov.Misses)
	}
	if sc, st := cov.SitesCovered(); sc != 1 || st != 3 {
		t.Errorf("sites covered = %d/%d, want 1/3", sc, st)
	}
	uncovered := cov.UncoveredSites()
	if len(uncovered) != 2 {
		t.Errorf("uncovered sites = %v, want 2", uncovered)
	}
	var sawSinkWidget bool
	for _, e := range cov.UncoveredEdges() {
		if e.Src == "Sink" && e.Dst == "Widget" {
			sawSinkWidget = true
		}
		if e.Src == profile.MainProgram && e.Dst == "Maker" {
			t.Error("exercised edge reported uncovered")
		}
	}
	if !sawSinkWidget {
		t.Errorf("Sink -> Widget not reported uncovered: %v", cov.UncoveredEdges())
	}
}

func TestCoverageMissesAndDynamicExemption(t *testing.T) {
	t.Parallel()
	g := scan(t, dynApp())

	p := fakeProfile("dyn",
		map[string][]string{
			"f1": {"Factory"},
			"r1": {"Requester"},
			// An observed Gadget activated through the factory on behalf of
			// the Requester: the path join must attribute it to Requester.
			"g1": {"Gadget", "Factory", "Requester"},
			// A class the static metadata knows nothing about.
			"x1": {"Orphaned"},
		},
		[][2]string{
			{"r1", "g1"}, // predicted via mention discipline
			{"f1", "g1"}, // dynamic factory driving its product: exempt
			{"r1", "x1"}, // unpredicted: a real miss
		},
	)
	cov := g.Coverage(p)

	for _, s := range cov.Sites {
		if s.Creator == "Requester" && s.Target == "Gadget" && !s.Covered {
			t.Error("factory-mediated activation not joined to Requester's site")
		}
	}
	var missKinds []string
	for _, m := range cov.Misses {
		missKinds = append(missKinds, m.Kind+":"+m.Src+"->"+m.Dst)
		if m.Src == "Factory" {
			t.Errorf("dynamic-source observation reported as miss: %v", m)
		}
	}
	// Exactly the Orphaned activation and the edge to it are misses.
	if len(cov.Misses) != 2 {
		t.Fatalf("misses = %v, want site and edge to Orphaned", missKinds)
	}
	for _, m := range cov.Misses {
		if m.Dst != "Orphaned" {
			t.Errorf("unexpected miss %v", m)
		}
	}
}

func TestCoveragePercentVacuouslyFull(t *testing.T) {
	t.Parallel()
	cov := &reach.Coverage{}
	if got := cov.Percent(); got != 100 {
		t.Errorf("empty coverage percent = %v, want 100", got)
	}
}
