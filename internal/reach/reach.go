// Package reach implements a conservative static activation-reachability
// analysis over application binary images.
//
// Coign's scenario-based profiling only sees the activations and
// inter-component communication that the training scenarios exercise
// (paper §4.1 stresses that scenarios must "fully exercise the components
// of each application"). This package answers the dual, static question:
// which activation sites and ICC edges can exist at all? The rewriter
// embeds every class's potential activation targets as relocation records
// (".reloc$<CLSID>" sections, see binimg.EncodeReloc); the scanner here
// reads them back out of the image, joins them with the class registry,
// and propagates interface flows to a fixed point — which class can hold
// which interface, including factory-returned and callback interfaces.
// The result is an over-approximate static ICC graph with per-site
// provenance. Diffing it against profiled scenario data yields a coverage
// report (see Coverage), and statically-reachable-but-unprofiled edges
// become conservative co-location constraints so chosen cuts stay safe on
// untrained paths.
package reach

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/binimg"
	"repro/internal/com"
	"repro/internal/idl"
	"repro/internal/profile"
)

// Site is one potential activation site: creator class (or the main
// program) instantiating the target class.
type Site struct {
	Creator    string    `json:"creator"` // class name or profile.MainProgram
	Target     string    `json:"target"`
	CLSID      com.CLSID `json:"clsid"`
	Provenance string    `json:"provenance"`
}

// Edge is one potential ICC edge: the source class holds an interface the
// destination class implements, so a call can flow between them.
type Edge struct {
	Src        string `json:"src"` // class name or profile.MainProgram
	Dst        string `json:"dst"`
	IID        string `json:"iid"`
	Provenance string `json:"provenance"`
}

// Graph is the output of the reachability analysis: every potential
// activation site and ICC edge of the application, over-approximated.
type Graph struct {
	App string `json:"app"`

	// Sites lists every statically known activation site, sorted.
	Sites []Site `json:"sites"`
	// Edges lists every potential ICC edge, sorted.
	Edges []Edge `json:"edges"`
	// Reachable lists the classes that can be activated at all, sorted.
	Reachable []string `json:"reachable"`
	// Unreachable lists registered classes no reachable activation site
	// targets — dead classes profiling can never see.
	Unreachable []string `json:"unreachable,omitempty"`
	// DynamicCreators lists reachable classes whose activation targets are
	// computed at run time (generic factories); an activation performed by
	// one is attributed to the innermost non-factory frame of the
	// activation call path.
	DynamicCreators []string `json:"dynamicCreators,omitempty"`
	// UnknownTargets lists CLSIDs mentioned in relocation records that are
	// absent from the class registry — stale activation metadata.
	UnknownTargets []string `json:"unknownTargets,omitempty"`

	siteIndex map[[2]string]bool // (creator, target)
	edgeIndex map[[2]string]bool // (src, dst) at class-pair level
	reachable map[string]bool
	dynamic   map[string]bool
}

// relocRecord is one parsed activation record.
type relocRecord struct {
	dynamic bool
	targets []com.CLSID
}

// Scan runs the reachability analysis: it parses the image's activation
// relocation records, joins them with the application's class registry,
// computes the set of activatable classes from the main program's
// activation roots, and propagates interface flows to a fixed point.
// Malformed images produce errors, never panics.
func Scan(img *binimg.Image, app *com.App) (*Graph, error) {
	if img == nil {
		return nil, fmt.Errorf("reach: nil image")
	}
	if app == nil || app.Classes == nil || app.Interfaces == nil {
		return nil, fmt.Errorf("reach: reachability analysis requires the class and interface registries")
	}

	// Pass 1: parse relocation records, keyed by creator (CLSID string or
	// the main program). Split records for one creator merge.
	records := make(map[string]*relocRecord)
	for _, s := range img.Sections {
		key, ok := strings.CutPrefix(s.Name, binimg.RelocPrefix)
		if !ok {
			continue
		}
		if key == "" {
			return nil, fmt.Errorf("reach: relocation section with empty owner")
		}
		dyn, targets, err := binimg.DecodeReloc(s.Data)
		if err != nil {
			return nil, fmt.Errorf("reach: section %s: %w", s.Name, err)
		}
		rec := records[key]
		if rec == nil {
			rec = &relocRecord{}
			records[key] = rec
		}
		rec.dynamic = rec.dynamic || dyn
		rec.targets = append(rec.targets, targets...)
	}

	g := &Graph{
		App:       img.AppName,
		siteIndex: make(map[[2]string]bool),
		edgeIndex: make(map[[2]string]bool),
		reachable: make(map[string]bool),
		dynamic:   make(map[string]bool),
	}

	// Pass 2: activation reachability. Starting from the main program's
	// roots, every mentioned class is activatable, and its own record's
	// mentions become activatable in turn.
	unknown := make(map[string]bool)
	type workItem struct {
		creator string // class name or profile.MainProgram
		key     string // record key (CLSID string or binimg.MainRelocName)
	}
	queue := []workItem{{creator: profile.MainProgram, key: binimg.MainRelocName}}
	visited := map[string]bool{binimg.MainRelocName: true}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		rec := records[item.key]
		if rec == nil {
			continue
		}
		if rec.dynamic {
			g.dynamic[item.creator] = true
		}
		for _, clsid := range rec.targets {
			target := app.Classes.Lookup(clsid)
			if target == nil {
				unknown[string(clsid)] = true
				continue
			}
			g.addSite(Site{
				Creator:    item.creator,
				Target:     target.Name,
				CLSID:      clsid,
				Provenance: fmt.Sprintf("relocation record %s%s", binimg.RelocPrefix, item.key),
			})
			if !g.reachable[target.Name] {
				g.reachable[target.Name] = true
			}
			if !visited[string(clsid)] {
				visited[string(clsid)] = true
				queue = append(queue, workItem{creator: target.Name, key: string(clsid)})
			}
		}
	}

	// Pass 3: interface-flow fixed point. holds[C][iid] records that class
	// C (or the main program) can come to possess an interface pointer of
	// type iid, with the provenance of the first derivation.
	g.propagate(app)

	for name := range g.reachable {
		g.Reachable = append(g.Reachable, name)
	}
	sort.Strings(g.Reachable)
	for _, c := range app.Classes.Classes() {
		if !g.reachable[c.Name] {
			g.Unreachable = append(g.Unreachable, c.Name)
		}
	}
	sort.Strings(g.Unreachable)
	for name := range g.dynamic {
		g.DynamicCreators = append(g.DynamicCreators, name)
	}
	sort.Strings(g.DynamicCreators)
	for clsid := range unknown {
		g.UnknownTargets = append(g.UnknownTargets, clsid)
	}
	sort.Strings(g.UnknownTargets)
	sort.Slice(g.Sites, func(i, j int) bool {
		if g.Sites[i].Creator != g.Sites[j].Creator {
			return g.Sites[i].Creator < g.Sites[j].Creator
		}
		return g.Sites[i].Target < g.Sites[j].Target
	})
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].Src != g.Edges[j].Src {
			return g.Edges[i].Src < g.Edges[j].Src
		}
		if g.Edges[i].Dst != g.Edges[j].Dst {
			return g.Edges[i].Dst < g.Edges[j].Dst
		}
		return g.Edges[i].IID < g.Edges[j].IID
	})
	return g, nil
}

func (g *Graph) addSite(s Site) {
	key := [2]string{s.Creator, s.Target}
	if g.siteIndex[key] {
		return
	}
	g.siteIndex[key] = true
	g.Sites = append(g.Sites, s)
}

// propagate computes the interface-flow fixed point and derives the
// static ICC edges.
//
// Holds are tracked at object granularity: holds[A][B] records that class
// A (or the main program) can come to possess an interface pointer to an
// instance of class B. This follows COM's object-capability discipline —
// a reference only travels through an activation request, a method return
// value, or a method argument — and keeps the over-approximation at the
// class-pair level rather than exploding every holder of an interface
// type into edges to all of its implementors.
//
// Dynamic-activation factories are edge-transparent: their targets (and
// therefore their communication partners) are data, not code, so the
// analysis neither predicts their outgoing edges nor counts observed ones
// as misses. Mention discipline covers the flow instead — the requesting
// class lists the factory-built CLSID in its own relocation record, which
// seeds the requester's holds directly.
func (g *Graph) propagate(app *com.App) {
	type deriv struct{ iid, prov string }
	// holds: holder -> provider class -> first derivation.
	holds := make(map[string]map[string]deriv)
	add := func(holder, class string, d deriv) bool {
		if holder == class {
			return false
		}
		m := holds[holder]
		if m == nil {
			m = make(map[string]deriv)
			holds[holder] = m
		}
		if _, ok := m[class]; ok {
			return false
		}
		m[class] = d
		return true
	}

	classByName := make(map[string]*com.Class)
	for _, c := range app.Classes.Classes() {
		classByName[c.Name] = c
	}
	// implements reports whether the class can travel as the given
	// interface type; an untyped slot ("") carries any reference.
	implements := func(class, iid string) bool {
		c := classByName[class]
		return c != nil && (iid == "" || c.Implements(iid))
	}
	// firstIID resolves the interface type to report on an edge when the
	// flow slot is untyped.
	firstIID := func(iid, class string) string {
		if iid != "" {
			return iid
		}
		if c := classByName[class]; c != nil && len(c.Interfaces) > 0 {
			return c.Interfaces[0]
		}
		return iid
	}

	// Interface types referenced by a method in each flow direction.
	returnsOf := make(map[string][]struct{ iid, prov string })
	acceptsOf := make(map[string][]struct{ iid, prov string })
	for _, iid := range app.Interfaces.IIDs() {
		d := app.Interfaces.Lookup(iid)
		for mi := range d.Methods {
			m := &d.Methods[mi]
			for _, out := range interfaceIIDs(m.Result) {
				returnsOf[iid] = append(returnsOf[iid], struct{ iid, prov string }{
					out, fmt.Sprintf("returned by %s.%s", iid, m.Name)})
			}
			for _, p := range m.Params {
				ids := interfaceIIDs(p.Type)
				if p.Dir == idl.Out || p.Dir == idl.InOut {
					for _, out := range ids {
						returnsOf[iid] = append(returnsOf[iid], struct{ iid, prov string }{
							out, fmt.Sprintf("returned by %s.%s", iid, m.Name)})
					}
				}
				if p.Dir == idl.In || p.Dir == idl.InOut {
					for _, in := range ids {
						acceptsOf[iid] = append(acceptsOf[iid], struct{ iid, prov string }{
							in, fmt.Sprintf("received via %s.%s", iid, m.Name)})
					}
				}
			}
		}
	}

	sortedKeys := func(m map[string]deriv) []string {
		out := make([]string, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}

	// Seed: an activation hands the creator a reference to the new
	// instance (and QueryInterface reaches all of its interfaces).
	for _, s := range g.Sites {
		if c := classByName[s.Target]; c != nil {
			add(s.Creator, s.Target, deriv{firstIID("", s.Target), fmt.Sprintf("activates %s", s.CLSID)})
		}
	}

	// Fixed point. For every held reference A -> B and every method of
	// B's interfaces:
	//   - a return-position interface of type j hands A anything B itself
	//     holds that can travel as j (provider-scoped return flow);
	//   - an In/InOut interface parameter of type j hands B anything A
	//     holds — including A itself — that can travel as j
	//     (caller-scoped callback flow).
	// Dynamic factories provide nothing by return flow: what they build is
	// bounded by the requester's own mentions, which already seed the
	// requester's holds.
	for changed := true; changed; {
		changed = false
		holders := make([]string, 0, len(holds))
		for h := range holds {
			holders = append(holders, h)
		}
		sort.Strings(holders)
		for _, holder := range holders {
			for _, class := range sortedKeys(holds[holder]) {
				c := classByName[class]
				if c == nil {
					continue
				}
				for _, own := range c.Interfaces {
					if !g.dynamic[class] {
						for _, r := range returnsOf[own] {
							for _, prov := range sortedKeys(holds[class]) {
								if !implements(prov, r.iid) {
									continue
								}
								if add(holder, prov, deriv{firstIID(r.iid, prov), r.prov}) {
									changed = true
								}
							}
						}
					}
					for _, a := range acceptsOf[own] {
						if holder != profile.MainProgram && implements(holder, a.iid) {
							if add(class, holder, deriv{firstIID(a.iid, holder), a.prov}) {
								changed = true
							}
						}
						for _, x := range sortedKeys(holds[holder]) {
							if !implements(x, a.iid) {
								continue
							}
							if add(class, x, deriv{firstIID(a.iid, x), a.prov}) {
								changed = true
							}
						}
					}
				}
			}
		}
	}

	// Edges: a held reference is a potential call path. Dynamic factories
	// are edge-transparent sources (see above).
	holders := make([]string, 0, len(holds))
	for h := range holds {
		holders = append(holders, h)
	}
	sort.Strings(holders)
	for _, holder := range holders {
		if holder != profile.MainProgram && !g.reachable[holder] {
			continue
		}
		if g.dynamic[holder] {
			continue
		}
		for _, class := range sortedKeys(holds[holder]) {
			if !g.reachable[class] {
				continue
			}
			key := [2]string{holder, class}
			if g.edgeIndex[key] {
				continue
			}
			g.edgeIndex[key] = true
			d := holds[holder][class]
			g.Edges = append(g.Edges, Edge{Src: holder, Dst: class, IID: d.iid, Provenance: d.prov})
		}
	}
}

// interfaceIIDs collects the IIDs of every interface pointer reachable in
// a type tree (directly, or nested in structs and arrays).
func interfaceIIDs(t *idl.TypeDesc) []string {
	if t == nil {
		return nil
	}
	switch t.Kind {
	case idl.KindInterface:
		return []string{t.IID}
	case idl.KindStruct:
		var out []string
		for _, f := range t.Fields {
			out = append(out, interfaceIIDs(f.Type)...)
		}
		return out
	case idl.KindArray:
		return interfaceIIDs(t.Elem)
	}
	return nil
}

// IsReachable reports whether the class can be activated at all.
func (g *Graph) IsReachable(class string) bool { return g.reachable[class] }

// IsDynamicCreator reports whether the class activates data-computed
// CLSIDs.
func (g *Graph) IsDynamicCreator(class string) bool { return g.dynamic[class] }

// HasSite reports whether the static analysis predicts the activation
// site (creator, target).
func (g *Graph) HasSite(creator, target string) bool {
	return g.siteIndex[[2]string{creator, target}]
}

// HasEdge reports whether the static analysis predicts an ICC edge from
// src to dst (at class-pair level).
func (g *Graph) HasEdge(src, dst string) bool {
	return g.edgeIndex[[2]string{src, dst}]
}

// EffectiveCreator resolves an activation call path (creator class chain,
// innermost frame first) to the class the static analysis attributes the
// site to: the innermost frame that is not a dynamic-activation factory.
// An empty or fully-dynamic path attributes the site to the main program.
func (g *Graph) EffectiveCreator(path []string) string {
	for _, class := range path {
		if !g.dynamic[class] {
			return class
		}
	}
	return profile.MainProgram
}
