// Package analysis implements Coign's profile analysis engine (paper §2):
// it combines component communication profiles and component location
// constraints into an abstract inter-component communication graph,
// concretizes it with a network profile into communication times, cuts it
// with the lift-to-front minimum-cut algorithm, and emits the distribution
// the component factory will enforce.
package analysis

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/com"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/profile"
)

// Constraint classes derived by static analysis of component binaries:
// components that call known GUI APIs must stay with the user's display;
// components that call storage APIs belong with the data.
var (
	guiAPIs = map[string]bool{
		com.APIGdiPaint:   true,
		com.APIUserWindow: true,
		com.APIUserInput:  true,
		com.APIClipboard:  true,
		com.APIPrintSpool: true,
	}
	storageAPIs = map[string]bool{
		com.APIFileRead:    true,
		com.APIFileWrite:   true,
		com.APIFileOpen:    true,
		com.APIODBCConnect: true,
		com.APIODBCExec:    true,
	}
)

// InferConstraint performs the per-class static analysis: it inspects the
// APIs a component binary imports and returns a machine constraint if one
// applies. GUI usage dominates storage usage: a component that paints must
// stay on the client no matter what it reads.
func InferConstraint(class *com.Class) (com.Machine, bool) {
	if class == nil {
		return 0, false
	}
	if class.Infrastructure {
		return class.Home, true
	}
	gui, storage := false, false
	for _, api := range class.APIs {
		if guiAPIs[api] {
			gui = true
		}
		if storageAPIs[api] {
			storage = true
		}
	}
	switch {
	case gui:
		return com.Client, true
	case storage:
		return com.Server, true
	default:
		return 0, false
	}
}

// Options tunes the analysis.
type Options struct {
	// ExactPricing prices edges from exact byte totals instead of bucket
	// representatives (the bucketing-accuracy ablation).
	ExactPricing bool
	// ExtraPins force named classifications to machines, modeling the
	// paper's programmer-supplied absolute constraints.
	ExtraPins map[string]com.Machine
	// ExtraCoLocate forces pairs of classifications together, modeling
	// programmer-supplied pair-wise constraints.
	ExtraCoLocate [][2]string
}

// Result is the analysis engine's output.
type Result struct {
	// Graph is the concrete (network-priced) ICC graph.
	Graph *graph.Graph
	// Cut is the minimum cut chosen by the lift-to-front algorithm.
	Cut *graph.Cut
	// Distribution maps every classification to a machine.
	Distribution map[string]com.Machine
	// PredictedComm is the communication time of the chosen distribution
	// under the network profile.
	PredictedComm time.Duration
	// DefaultComm is the predicted communication time of the developer's
	// default distribution (classes at their Home machines).
	DefaultComm time.Duration
	// ServerClassifications and ClientClassifications count cut sides.
	ServerClassifications int
	ClientClassifications int
	// ServerInstances and ClientInstances weight the sides by profiled
	// instance counts — the numbers reported in the paper's distribution
	// figures.
	ServerInstances int64
	ClientInstances int64
	// NonRemotableEdges counts co-location constraints from opaque
	// parameters (the black lines of Figures 4 and 5).
	NonRemotableEdges int
	// Constrained counts classifications pinned by static analysis.
	Constrained int
}

// BuildGraph constructs the concrete communication graph for a profile:
// one node per classification, edges priced under the network profile,
// pins from static API analysis, and co-location for non-remotable edges.
func BuildGraph(p *profile.Profile, np *netsim.Profile, classes *com.ClassRegistry, opts Options) (*graph.Graph, int, int) {
	g := graph.New()
	g.Pin(profile.MainProgram, graph.SourceSide)

	constrained := 0
	for id, ci := range p.Classifications {
		g.Node(id)
		if m, ok := InferConstraint(classes.LookupName(ci.Class)); ok {
			constrained++
			if m == com.Client {
				g.Pin(id, graph.SourceSide)
			} else {
				g.Pin(id, graph.SinkSide)
			}
		}
	}
	for id, m := range opts.ExtraPins {
		if m == com.Client {
			g.Pin(id, graph.SourceSide)
		} else {
			g.Pin(id, graph.SinkSide)
		}
	}

	nonRemotable := 0
	for k, e := range p.Edges {
		var t time.Duration
		if opts.ExactPricing {
			t = e.ExactTime(np)
		} else {
			t = e.Time(np)
		}
		g.AddEdge(k.Src, k.Dst, t.Seconds())
		if e.NonRemotable {
			nonRemotable++
			g.CoLocate(k.Src, k.Dst)
		}
	}
	for _, pair := range opts.ExtraCoLocate {
		g.CoLocate(pair[0], pair[1])
	}
	return g, constrained, nonRemotable
}

// Analyze runs the complete engine: graph construction, minimum cut, and
// distribution extraction.
func Analyze(p *profile.Profile, np *netsim.Profile, app *com.App, opts Options) (*Result, error) {
	if p == nil || np == nil || app == nil {
		return nil, fmt.Errorf("analysis: profile, network profile, and application are required")
	}
	g, constrained, nonRemotable := BuildGraph(p, np, app.Classes, opts)
	cut, err := g.MinCut()
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", p.App, err)
	}

	res := &Result{
		Graph:             g,
		Cut:               cut,
		Distribution:      make(map[string]com.Machine, len(cut.Assignment)),
		PredictedComm:     time.Duration(cut.Weight * float64(time.Second)),
		NonRemotableEdges: nonRemotable,
		Constrained:       constrained,
	}
	for id, side := range cut.Assignment {
		if id == profile.MainProgram {
			continue
		}
		m := com.Client
		if side == graph.SinkSide {
			m = com.Server
		}
		res.Distribution[id] = m
		ci := p.Classifications[id]
		var n int64 = 0
		if ci != nil {
			n = ci.Instances
		}
		if side == graph.SinkSide {
			res.ServerClassifications++
			res.ServerInstances += n
		} else {
			res.ClientClassifications++
			res.ClientInstances += n
		}
	}

	// Default distribution: every classification at its class's Home.
	def := make(map[string]graph.Side, len(p.Classifications))
	def[profile.MainProgram] = graph.SourceSide
	for id, ci := range p.Classifications {
		side := graph.SourceSide
		if cl := app.Classes.LookupName(ci.Class); cl != nil && cl.Home != com.Client {
			side = graph.SinkSide
		}
		def[id] = side
	}
	res.DefaultComm = time.Duration(g.EvaluateAssignment(def) * float64(time.Second))
	return res, nil
}

// ServerComponents returns the classifications the cut placed on the
// server, sorted, with their classes and instance counts — the data behind
// the paper's distribution figures.
func (r *Result) ServerComponents(p *profile.Profile) []ComponentPlacement {
	var out []ComponentPlacement
	for id, m := range r.Distribution {
		if m != com.Server {
			continue
		}
		cp := ComponentPlacement{Classification: id}
		if ci := p.Classifications[id]; ci != nil {
			cp.Class = ci.Class
			cp.Instances = ci.Instances
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Classification < out[j].Classification })
	return out
}

// ComponentPlacement names one classification's placement.
type ComponentPlacement struct {
	Classification string
	Class          string
	Instances      int64
}

// Savings returns the fractional reduction in predicted communication time
// relative to the default distribution (0 when the default is already
// optimal).
func (r *Result) Savings() float64 {
	if r.DefaultComm <= 0 {
		return 0
	}
	s := 1 - float64(r.PredictedComm)/float64(r.DefaultComm)
	if s < 0 {
		return 0
	}
	return s
}
