// Package analysis implements Coign's profile analysis engine (paper §2):
// it combines component communication profiles and component location
// constraints into an abstract inter-component communication graph,
// concretizes it with a network profile into communication times, cuts it
// with the highest-label push-relabel minimum-cut algorithm, and emits the
// distribution the component factory will enforce.
package analysis

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/com"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/purity"
	"repro/internal/staticanal"
)

// InferConstraint performs the per-class static analysis: it inspects the
// APIs a component binary imports and returns a machine constraint if one
// applies. GUI usage dominates storage usage: a component that paints must
// stay on the client no matter what it reads. The rules themselves live in
// the static analyzer; this wrapper keeps the engine's historical entry
// point.
func InferConstraint(class *com.Class) (com.Machine, bool) {
	m, _, ok := staticanal.InferPin(class)
	return m, ok
}

// Options tunes the analysis.
type Options struct {
	// ExactPricing prices edges from exact byte totals instead of bucket
	// representatives (the bucketing-accuracy ablation).
	ExactPricing bool
	// Constraints, when set, is the static analyzer's constraint set: its
	// pins and pair-wise co-location constraints are installed into the
	// graph before cutting, and its verifier cross-checks the profile and
	// the chosen cut (divergences land in Result.Findings). When nil the
	// engine falls back to per-class API inference alone.
	Constraints *staticanal.ConstraintSet
	// ExtraPins force named classifications to machines, modeling the
	// paper's programmer-supplied absolute constraints.
	ExtraPins map[string]com.Machine
	// ExtraCoLocate forces pairs of classifications together, modeling
	// programmer-supplied pair-wise constraints.
	ExtraCoLocate [][2]string
	// Purity, when set, is the static purity analyzer's report: profiled
	// components are graded Stateless/ReadMostly/Stateful (surfaced in
	// Result.Purity) and the purity verifier cross-checks profile-observed
	// mutations against static read-only claims (findings land in
	// Result.Findings).
	Purity *purity.Report
	// PurityTheta is the read-mostly threshold; <= 0 selects
	// purity.DefaultTheta.
	PurityTheta float64
	// Replicate additionally cuts the replication-aware network: every
	// replication-eligible node's edges are removed (graph.Replicate) and
	// the replicated cut is reported alongside the plain one, with an
	// invariant finding if it ever costs more.
	Replicate bool
	// Alias, when set, is the points-to refiner backing
	// Constraints.Refined: its zero-miss verifier cross-checks the
	// prediction against the profile (findings land in Result.Findings).
	// Supplying it does not refine Constraints — pass an already-refined
	// set for that.
	Alias staticanal.OpaqueRefiner
	// Arena, when set, backs the plain minimum cut with a reusable
	// graph.CutArena: callers that analyze the same application repeatedly
	// (per network model, per profile window) reuse the CSR arrays and
	// warm-start push-relabel from the previous flow instead of cutting
	// cold every time. Nil cuts one-shot. Not safe for concurrent Analyze
	// calls sharing one arena.
	Arena *graph.CutArena
	// ReplicaArena is Arena for the replication-aware cut, which runs on a
	// different topology (replicated nodes' edges vanish) and so must not
	// alternate with the plain cut in one arena — that would restage on
	// every call instead of warm-starting.
	ReplicaArena *graph.CutArena
}

// Result is the analysis engine's output.
type Result struct {
	// Graph is the concrete (network-priced) ICC graph.
	Graph *graph.Graph
	// Cut is the minimum cut chosen by the push-relabel core.
	Cut *graph.Cut
	// Distribution maps every classification to a machine.
	Distribution map[string]com.Machine
	// PredictedComm is the communication time of the chosen distribution
	// under the network profile.
	PredictedComm time.Duration
	// DefaultComm is the predicted communication time of the developer's
	// default distribution (classes at their Home machines), priced with
	// true edge weights even when that distribution violates constraints.
	DefaultComm time.Duration
	// DefaultViolations counts co-location constraints the default
	// distribution splits. A non-zero value means the default placement is
	// not actually realizable (a non-remotable interface would cross the
	// network); DefaultComm still reports the finite communication time so
	// savings stay meaningful.
	DefaultViolations int
	// ServerClassifications and ClientClassifications count cut sides.
	ServerClassifications int
	ClientClassifications int
	// ServerInstances and ClientInstances weight the sides by profiled
	// instance counts — the numbers reported in the paper's distribution
	// figures.
	ServerInstances int64
	ClientInstances int64
	// NonRemotableEdges counts co-location constraints from opaque
	// parameters (the black lines of Figures 4 and 5).
	NonRemotableEdges int
	// Constrained counts classifications pinned by static analysis.
	Constrained int
	// StaticCoLocations counts profile edges welded by the static
	// constraint set (before any dynamic opaque-parameter evidence).
	StaticCoLocations int
	// CoverageCoLocations counts classification pairs welded because a
	// statically reachable ICC edge was never exercised by the training
	// scenarios (see reach.Coverage.InstallConstraints).
	CoverageCoLocations int
	// AliasCoLocations counts classification pairs welded by the
	// points-to refinement's alias pairs (classes sharing mutable state
	// through an intermediary).
	AliasCoLocations int
	// NonRemotableCleared counts profile edges whose dynamic
	// non-remotable evidence the points-to refinement explained away as
	// immutable payload exchange (the weld was skipped).
	NonRemotableCleared int
	// Findings is the static/dynamic verifier's output: cross-check
	// divergences and (never expected) cut-constraint violations.
	Findings []staticanal.Finding
	// Purity is the profile-folded component grading (nil unless
	// Options.Purity was supplied).
	Purity *purity.Grading
	// ReplicatedCut is the minimum cut of the replication-aware network
	// (nil unless Options.Replicate).
	ReplicatedCut *graph.Cut
	// ReplicatedComm is the communication time of the replicated cut.
	ReplicatedComm time.Duration
	// Replicated lists the nodes actually replicated, sorted (eligible
	// nodes that are pinned or welded are skipped).
	Replicated []string
}

// BuildStats summarizes the constraints installed during graph
// construction.
type BuildStats struct {
	// Constrained counts classifications pinned to a machine.
	Constrained int
	// NonRemotable counts edges welded by dynamic opaque-parameter
	// evidence in the profile.
	NonRemotable int
	// StaticCoLocations counts edges welded by the static constraint set.
	StaticCoLocations int
	// CoverageCoLocations counts pairs welded by scenario-coverage
	// constraints.
	CoverageCoLocations int
	// AliasCoLocations counts pairs welded by points-to alias pairs.
	AliasCoLocations int
	// NonRemotableCleared counts dynamic non-remotable welds the
	// points-to refinement cleared.
	NonRemotableCleared int
}

// BuildGraph constructs the concrete communication graph for a profile:
// one node per classification, edges priced under the network profile,
// pins and pair-wise welds from the static constraint set (falling back
// to per-class API inference when no set is supplied), and co-location
// for dynamically observed non-remotable edges.
func BuildGraph(p *profile.Profile, np *netsim.Profile, classes *com.ClassRegistry, opts Options) (*graph.Graph, BuildStats) {
	g := graph.New()
	g.Pin(profile.MainProgram, graph.SourceSide)

	var st BuildStats
	// Intern nodes in sorted order: node indices decide the edge-key order
	// every downstream float accumulation (cut weights, assignment pricing)
	// sums in, and map-order interning made those sums — and tie-breaks
	// between equal-cost cuts — drift across runs.
	for _, id := range p.ClassificationIDs() {
		g.Node(id)
	}
	if cs := opts.Constraints; cs != nil {
		applied := cs.ApplyToGraph(g, p)
		st.Constrained = applied.Pins
		st.StaticCoLocations = applied.CoLocations
		st.CoverageCoLocations = applied.CoverageCoLocations
		st.AliasCoLocations = applied.AliasCoLocations
	} else {
		for id, ci := range p.Classifications {
			if m, ok := InferConstraint(classes.LookupName(ci.Class)); ok {
				st.Constrained++
				if m == com.Client {
					g.Pin(id, graph.SourceSide)
				} else {
					g.Pin(id, graph.SinkSide)
				}
			}
		}
	}
	for id, m := range opts.ExtraPins {
		if m == com.Client {
			g.Pin(id, graph.SourceSide)
		} else {
			g.Pin(id, graph.SinkSide)
		}
	}

	for k, e := range p.Edges {
		var t time.Duration
		if opts.ExactPricing {
			t = e.ExactTime(np)
		} else {
			t = e.Time(np)
		}
		g.AddEdge(k.Src, k.Dst, t.Seconds())
		if e.NonRemotable {
			// A refined constraint set (see staticanal.Refined) may explain
			// the dynamic evidence away as an immutable payload exchange; an
			// unrefined set always welds.
			if cs := opts.Constraints; cs != nil &&
				!cs.ObservedNonRemotableWeld(classNameOf(p, k.Src), classNameOf(p, k.Dst)) {
				st.NonRemotableCleared++
				continue
			}
			st.NonRemotable++
			g.CoLocate(k.Src, k.Dst)
		}
	}
	for _, pair := range opts.ExtraCoLocate {
		g.CoLocate(pair[0], pair[1])
	}
	return g, st
}

// Analyze runs the complete engine: graph construction, minimum cut, and
// distribution extraction. The context is threaded into the push-relabel
// core, so a cancelled or expired job aborts mid-cut instead of running
// the flow to completion.
func Analyze(ctx context.Context, p *profile.Profile, np *netsim.Profile, app *com.App, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil || np == nil || app == nil {
		return nil, fmt.Errorf("analysis: profile, network profile, and application are required")
	}
	g, st := BuildGraph(p, np, app.Classes, opts)
	var cut *graph.Cut
	var err error
	if opts.Arena != nil {
		cut, err = g.MinCutArena(ctx, opts.Arena)
	} else {
		cut, err = g.MinCutCtx(ctx)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", p.App, err)
	}

	res := &Result{
		Graph:               g,
		Cut:                 cut,
		Distribution:        make(map[string]com.Machine, len(cut.Assignment)),
		PredictedComm:       time.Duration(cut.Weight * float64(time.Second)),
		NonRemotableEdges:   st.NonRemotable,
		Constrained:         st.Constrained,
		StaticCoLocations:   st.StaticCoLocations,
		CoverageCoLocations: st.CoverageCoLocations,
		AliasCoLocations:    st.AliasCoLocations,
		NonRemotableCleared: st.NonRemotableCleared,
	}
	for id, side := range cut.Assignment {
		if id == profile.MainProgram {
			continue
		}
		m := com.Client
		if side == graph.SinkSide {
			m = com.Server
		}
		res.Distribution[id] = m
		ci := p.Classifications[id]
		var n int64 = 0
		if ci != nil {
			n = ci.Instances
		}
		if side == graph.SinkSide {
			res.ServerClassifications++
			res.ServerInstances += n
		} else {
			res.ClientClassifications++
			res.ClientInstances += n
		}
	}

	// Default distribution: every classification at its class's Home.
	def := make(map[string]graph.Side, len(p.Classifications))
	def[profile.MainProgram] = graph.SourceSide
	for id, ci := range p.Classifications {
		side := graph.SourceSide
		if cl := app.Classes.LookupName(ci.Class); cl != nil && cl.Home != com.Client {
			side = graph.SinkSide
		}
		def[id] = side
	}
	// Price the default with true weights: collapsing to +Inf here used to
	// overflow the duration conversion into garbage whenever the default
	// split a co-located pair. The violation count is reported alongside.
	defW, defViol := g.EvaluateAssignmentDetail(def)
	res.DefaultComm = time.Duration(defW * float64(time.Second))
	res.DefaultViolations = defViol

	// Verifier: cross-check the static prediction against the observed ICC
	// and the chosen cut against every constraint. With the constraints
	// installed as pins and infinite-weight edges, cut violations should be
	// impossible; divergences surface as findings, never failures.
	if cs := opts.Constraints; cs != nil {
		res.Findings = append(res.Findings, cs.CrossCheck(p)...)
		res.Findings = append(res.Findings, cs.CheckCut(p, res.Distribution)...)
	}
	// The points-to refiner's zero-miss check: every profile-observed
	// non-remotable transfer must be statically predicted, or refining
	// welds on its say-so would be unsound.
	if opts.Alias != nil {
		res.Findings = append(res.Findings, opts.Alias.Verify(p)...)
	}

	// Purity grading and the replication-aware cut. Replication only ever
	// removes edges, so the replicated cut can never cost more than the
	// plain one; a violation of that invariant is an engine bug and
	// surfaces as an error finding.
	if opts.Purity != nil {
		res.Purity = opts.Purity.Grade(p, opts.PurityTheta)
		res.Findings = append(res.Findings, opts.Purity.Verify(p)...)
		if opts.Replicate {
			rg, replicated := g.Replicate(res.Purity.Replication.Classifications)
			var rcut *graph.Cut
			if opts.ReplicaArena != nil {
				rcut, err = rg.MinCutArena(ctx, opts.ReplicaArena)
			} else {
				rcut, err = rg.MinCutCtx(ctx)
			}
			if err != nil {
				return nil, fmt.Errorf("analysis: %s: replicated cut: %w", p.App, err)
			}
			res.ReplicatedCut = rcut
			res.ReplicatedComm = time.Duration(rcut.Weight * float64(time.Second))
			res.Replicated = replicated
			if rcut.Weight > cut.Weight*(1+1e-9)+1e-12 {
				res.Findings = append(res.Findings, staticanal.Finding{
					Kind: "replication-regression", Severity: staticanal.SeverityError,
					Detail: fmt.Sprintf("replicated cut weight %g exceeds plain cut weight %g", rcut.Weight, cut.Weight),
				})
			}
		}
	}
	return res, nil
}

// classNameOf maps a classification id to its class name ("" for the
// main program and unknown classifications).
func classNameOf(p *profile.Profile, id string) string {
	if ci := p.Classifications[id]; ci != nil {
		return ci.Class
	}
	return ""
}

// ServerComponents returns the classifications the cut placed on the
// server, sorted, with their classes and instance counts — the data behind
// the paper's distribution figures.
func (r *Result) ServerComponents(p *profile.Profile) []ComponentPlacement {
	var out []ComponentPlacement
	for id, m := range r.Distribution {
		if m != com.Server {
			continue
		}
		cp := ComponentPlacement{Classification: id}
		if ci := p.Classifications[id]; ci != nil {
			cp.Class = ci.Class
			cp.Instances = ci.Instances
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Classification < out[j].Classification })
	return out
}

// ComponentPlacement names one classification's placement.
type ComponentPlacement struct {
	Classification string
	Class          string
	Instances      int64
}

// Savings returns the fractional reduction in predicted communication time
// relative to the default distribution (0 when the default is already
// optimal).
func (r *Result) Savings() float64 {
	if r.DefaultComm <= 0 {
		return 0
	}
	s := 1 - float64(r.PredictedComm)/float64(r.DefaultComm)
	if s < 0 {
		return 0
	}
	return s
}
