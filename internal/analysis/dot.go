package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/com"
	"repro/internal/profile"
)

// WriteDOT renders a distribution in Graphviz DOT form, the shape of the
// paper's Figures 4–8: one node per instance classification (sized by
// instance count), server-side components filled dark, and non-remotable
// interface edges drawn as heavy black lines against the gray of
// distributable edges.
func (r *Result) WriteDOT(w io.Writer, p *profile.Profile, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph coign {\n")
	fmt.Fprintf(&b, "  label=%q; labelloc=t; fontsize=20;\n", title)
	fmt.Fprintf(&b, "  layout=neato; overlap=false; splines=true;\n")
	fmt.Fprintf(&b, "  node [shape=circle, fontsize=8, width=0.3, fixedsize=false];\n")

	ids := make([]string, 0, len(p.Classifications))
	for id := range p.Classifications {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	fmt.Fprintf(&b, "  %q [shape=box, label=\"main\"];\n", profile.MainProgram)
	for _, id := range ids {
		ci := p.Classifications[id]
		attrs := []string{fmt.Sprintf("label=%q", fmt.Sprintf("%s\nx%d", ci.Class, ci.Instances))}
		if r.Distribution[id] == com.Server {
			attrs = append(attrs, "style=filled", "fillcolor=gray25", "fontcolor=white")
		} else {
			attrs = append(attrs, "style=filled", "fillcolor=white")
		}
		fmt.Fprintf(&b, "  %q [%s];\n", id, strings.Join(attrs, ", "))
	}

	// Aggregate ordered edges into undirected ones for drawing.
	type ekey struct{ a, b string }
	type einfo struct {
		calls        int64
		nonRemotable bool
	}
	undirected := map[ekey]*einfo{}
	for k, e := range p.Edges {
		a, bb := k.Src, k.Dst
		if a > bb {
			a, bb = bb, a
		}
		info := undirected[ekey{a, bb}]
		if info == nil {
			info = &einfo{}
			undirected[ekey{a, bb}] = info
		}
		info.calls += e.Calls
		info.nonRemotable = info.nonRemotable || e.NonRemotable
	}
	keys := make([]ekey, 0, len(undirected))
	for k := range undirected {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		info := undirected[k]
		if info.nonRemotable {
			// The black lines of the paper's figures.
			fmt.Fprintf(&b, "  %q -- %q [color=black, penwidth=2.0];\n", k.a, k.b)
		} else {
			fmt.Fprintf(&b, "  %q -- %q [color=gray60];\n", k.a, k.b)
		}
	}
	fmt.Fprintf(&b, "}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
