package analysis

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/netsim"
	"repro/internal/profile"
)

func np() *netsim.Profile {
	return netsim.ExactProfile(netsim.TenBaseT, netsim.DefaultSampleSizes)
}

func nopObject() com.Object { return com.ObjectFunc(nil) }

// benchApp: GUI class (client-pinned), Storage class (server
// infrastructure), Reader and Worker unconstrained.
func benchApp() *com.App {
	classes := com.NewClassRegistry()
	classes.Register(&com.Class{ID: "C_GUI", Name: "GUI",
		APIs: []string{com.APIUserWindow}, New: nopObject})
	classes.Register(&com.Class{ID: "C_Storage", Name: "Storage",
		APIs: []string{com.APIFileRead}, Home: com.Server, Infrastructure: true,
		New: nopObject})
	classes.Register(&com.Class{ID: "C_Reader", Name: "Reader", New: nopObject})
	classes.Register(&com.Class{ID: "C_Worker", Name: "Worker", New: nopObject})
	return &com.App{Name: "bench", Classes: classes}
}

// benchProfile: main->GUI chatter (small), Reader<->Storage heavy,
// Reader->GUI light. The optimal cut moves Reader to the server.
func benchProfile() *profile.Profile {
	p := profile.New("bench", "ifcb")
	p.Scenarios = []string{"s"}
	add := func(id, class string, n int64) {
		for i := int64(0); i < n; i++ {
			p.AddInstance(profile.InstanceRecord{ID: uint64(len(p.Instances) + 1),
				Class: class, Classification: id})
		}
	}
	add("gui@1", "GUI", 3)
	add("storage@1", "Storage", 1)
	add("reader@1", "Reader", 1)
	add("worker@1", "Worker", 1)

	for i := 0; i < 10; i++ {
		p.Edge(profile.MainProgram, "gui@1").Record(64, 16, false)
	}
	for i := 0; i < 500; i++ {
		p.Edge("reader@1", "storage@1").Record(64, 8192, false)
	}
	for i := 0; i < 5; i++ {
		p.Edge("reader@1", "gui@1").Record(128, 16, false)
	}
	// Worker floats free of everything.
	return p
}

func TestInferConstraint(t *testing.T) {
	t.Parallel()
	app := benchApp()
	if m, ok := InferConstraint(app.Classes.LookupName("GUI")); !ok || m != com.Client {
		t.Errorf("GUI constraint = %v,%v", m, ok)
	}
	if m, ok := InferConstraint(app.Classes.LookupName("Storage")); !ok || m != com.Server {
		t.Errorf("Storage constraint = %v,%v", m, ok)
	}
	if _, ok := InferConstraint(app.Classes.LookupName("Reader")); ok {
		t.Error("unconstrained class got a constraint")
	}
	if _, ok := InferConstraint(nil); ok {
		t.Error("nil class got a constraint")
	}
	// GUI wins over storage when both appear.
	both := &com.Class{ID: "B", Name: "Both",
		APIs: []string{com.APIFileRead, com.APIGdiPaint}, New: nopObject}
	if m, _ := InferConstraint(both); m != com.Client {
		t.Errorf("mixed-API class constrained to %v", m)
	}
	// Infrastructure is pinned home regardless of APIs.
	infra := &com.Class{ID: "I", Name: "Infra", Home: com.Middle,
		Infrastructure: true, APIs: []string{com.APIGdiPaint}, New: nopObject}
	if m, ok := InferConstraint(infra); !ok || m != com.Middle {
		t.Errorf("infrastructure constraint = %v,%v", m, ok)
	}
}

func TestAnalyzeMovesReaderToServer(t *testing.T) {
	t.Parallel()
	res, err := Analyze(context.Background(), benchProfile(), np(), benchApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distribution["reader@1"] != com.Server {
		t.Errorf("reader placed on %v", res.Distribution["reader@1"])
	}
	if res.Distribution["gui@1"] != com.Client {
		t.Errorf("gui placed on %v", res.Distribution["gui@1"])
	}
	if res.Distribution["storage@1"] != com.Server {
		t.Errorf("storage placed on %v", res.Distribution["storage@1"])
	}
	// The free-floating worker stays on the client.
	if res.Distribution["worker@1"] != com.Client {
		t.Errorf("worker placed on %v", res.Distribution["worker@1"])
	}
	// Coign must beat the default (reader on client pulls 500 big blocks).
	if res.PredictedComm >= res.DefaultComm {
		t.Errorf("predicted %v not better than default %v", res.PredictedComm, res.DefaultComm)
	}
	if s := res.Savings(); s < 0.5 {
		t.Errorf("savings = %v", s)
	}
	if res.ServerClassifications != 2 || res.ServerInstances != 2 {
		t.Errorf("server: %d classifications, %d instances",
			res.ServerClassifications, res.ServerInstances)
	}
	if res.Constrained != 2 {
		t.Errorf("constrained = %d", res.Constrained)
	}
	comps := res.ServerComponents(benchProfile())
	if len(comps) != 2 || comps[0].Classification != "reader@1" {
		t.Errorf("server components = %v", comps)
	}
}

func TestAnalyzeNonRemotableForcesColocation(t *testing.T) {
	t.Parallel()
	p := benchProfile()
	// A non-remotable edge between reader and gui drags the reader back to
	// the client despite the heavy storage traffic... unless storage
	// traffic dominates; use a heavier opaque edge weight scenario: mark
	// the reader->gui edge non-remotable.
	p.Edge("reader@1", "gui@1").NonRemotable = true
	res, err := Analyze(context.Background(), p, np(), benchApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NonRemotableEdges != 1 {
		t.Errorf("non-remotable edges = %d", res.NonRemotableEdges)
	}
	if res.Distribution["reader@1"] != com.Client {
		t.Error("co-location constraint not honored")
	}
	// Never worse than default even when constrained.
	if res.PredictedComm > res.DefaultComm {
		t.Errorf("predicted %v worse than default %v", res.PredictedComm, res.DefaultComm)
	}
}

// Regression: when the developer's default distribution split a
// co-located pair, EvaluateAssignment returned +Inf and the duration
// conversion overflowed DefaultComm into garbage (minimum int64), which
// zeroed Savings. The default is now priced with true edge weights and the
// infeasibility is surfaced as DefaultViolations.
func TestAnalyzeDefaultCommSurvivesSplitCoLocation(t *testing.T) {
	t.Parallel()
	// Worker lives on the server by default but carries no pinning
	// evidence (not infrastructure, no APIs), so the instance stays
	// satisfiable: the cut is free to pull it to the client.
	classes := com.NewClassRegistry()
	classes.Register(&com.Class{ID: "C_GUI", Name: "GUI",
		APIs: []string{com.APIUserWindow}, New: nopObject})
	classes.Register(&com.Class{ID: "C_Worker", Name: "Worker",
		Home: com.Server, New: nopObject})
	app := &com.App{Name: "bench", Classes: classes}

	p := profile.New("bench", "ifcb")
	p.Scenarios = []string{"s"}
	p.AddInstance(profile.InstanceRecord{ID: 1, Class: "GUI", Classification: "gui@1"})
	p.AddInstance(profile.InstanceRecord{ID: 2, Class: "Worker", Classification: "worker@1"})
	for i := 0; i < 20; i++ {
		p.Edge(profile.MainProgram, "gui@1").Record(64, 16, false)
	}
	for i := 0; i < 50; i++ {
		p.Edge("gui@1", "worker@1").Record(256, 1024, false)
	}
	// The opaque interface welds the pair; the default (gui on client,
	// worker at its server home) splits it.
	p.Edge("gui@1", "worker@1").NonRemotable = true

	res, err := Analyze(context.Background(), p, np(), app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DefaultComm <= 0 {
		t.Errorf("DefaultComm = %v, want a positive finite duration", res.DefaultComm)
	}
	if res.DefaultViolations != 1 {
		t.Errorf("DefaultViolations = %d, want 1", res.DefaultViolations)
	}
	// The chosen distribution honors the weld.
	if res.Distribution["worker@1"] != res.Distribution["gui@1"] {
		t.Error("cut split the co-located pair")
	}
	// With the pair welded on the client, all profiled traffic stays
	// local and the default's crossing weight becomes pure savings.
	if res.PredictedComm >= res.DefaultComm {
		t.Errorf("predicted %v not better than default %v", res.PredictedComm, res.DefaultComm)
	}
	if s := res.Savings(); s <= 0 {
		t.Errorf("Savings = %v, want > 0", s)
	}
	// A feasible default reports zero violations.
	res2, err := Analyze(context.Background(), benchProfile(), np(), benchApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.DefaultViolations != 0 {
		t.Errorf("feasible default reports %d violations", res2.DefaultViolations)
	}
}

func TestAnalyzeExtraConstraints(t *testing.T) {
	t.Parallel()
	res, err := Analyze(context.Background(), benchProfile(), np(), benchApp(), Options{
		ExtraPins: map[string]com.Machine{"reader@1": com.Client},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distribution["reader@1"] != com.Client {
		t.Error("absolute constraint ignored")
	}
	res2, err := Analyze(context.Background(), benchProfile(), np(), benchApp(), Options{
		ExtraCoLocate: [][2]string{{"reader@1", "gui@1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Distribution["reader@1"] != com.Client {
		t.Error("pair-wise constraint ignored")
	}
}

func TestAnalyzeExactPricing(t *testing.T) {
	t.Parallel()
	a, err := Analyze(context.Background(), benchProfile(), np(), benchApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(context.Background(), benchProfile(), np(), benchApp(), Options{ExactPricing: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same placement decision; slightly different predicted times.
	if a.Distribution["reader@1"] != b.Distribution["reader@1"] {
		t.Error("pricing mode changed the distribution")
	}
	ratio := float64(a.PredictedComm+1) / float64(b.PredictedComm+1)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("bucketed %v vs exact %v", a.PredictedComm, b.PredictedComm)
	}
}

func TestAnalyzeArgumentErrors(t *testing.T) {
	t.Parallel()
	if _, err := Analyze(context.Background(), nil, np(), benchApp(), Options{}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := Analyze(context.Background(), benchProfile(), nil, benchApp(), Options{}); err == nil {
		t.Error("nil network profile accepted")
	}
	if _, err := Analyze(context.Background(), benchProfile(), np(), nil, Options{}); err == nil {
		t.Error("nil app accepted")
	}
}

func TestAnalyzeUnsatisfiableConstraints(t *testing.T) {
	t.Parallel()
	p := benchProfile()
	p.Edge("gui@1", "storage@1").Record(10, 10, true) // colocate GUI & storage
	if _, err := Analyze(context.Background(), p, np(), benchApp(), Options{}); err == nil {
		t.Error("contradictory constraints not reported")
	}
}

// evalProfiles builds profiled+eval profile pairs where two View instances
// behave identically and a Writer behaves differently.
func evalProfiles(classifier string) (*profile.Profile, *profile.Profile) {
	mk := func(scen string, extraView bool) *profile.Profile {
		p := profile.New("app", classifier)
		p.Scenarios = []string{scen}
		p.AddInstance(profile.InstanceRecord{ID: 1, Class: "View", Classification: "view@1"})
		p.AddInstance(profile.InstanceRecord{ID: 2, Class: "Writer", Classification: "writer@1"})
		p.InstEdge(0, 1).Record(100, 100, false)
		p.Edge(profile.MainProgram, "view@1").Record(100, 100, false)
		p.InstEdge(2, 1).Record(50, 10, false)
		p.Edge("writer@1", "view@1").Record(50, 10, false)
		if extraView {
			p.AddInstance(profile.InstanceRecord{ID: 3, Class: "View", Classification: "view@new"})
			p.InstEdge(0, 3).Record(100, 100, false)
			p.Edge(profile.MainProgram, "view@new").Record(100, 100, false)
		}
		return p
	}
	return mk("profiled", false), mk("bigone", true)
}

func TestEvaluateClassifier(t *testing.T) {
	t.Parallel()
	profiled, eval := evalProfiles("ifcb")
	res, err := EvaluateClassifier(profiled, eval, np())
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfiledClassifications != 2 {
		t.Errorf("profiled classifications = %d", res.ProfiledClassifications)
	}
	if res.NewClassifications != 1 {
		t.Errorf("new classifications = %d", res.NewClassifications)
	}
	if res.AvgInstancesPerClassification != 1 {
		t.Errorf("instances/classification = %v", res.AvgInstancesPerClassification)
	}
	// Instances 1 and 2 correlate perfectly with their profiles; instance
	// 3's classification is new (correlation 0): average 2/3.
	if res.AvgCorrelation < 0.6 || res.AvgCorrelation > 0.7 {
		t.Errorf("avg correlation = %v", res.AvgCorrelation)
	}
}

func TestEvaluateClassifierErrors(t *testing.T) {
	t.Parallel()
	profiled, eval := evalProfiles("ifcb")
	other := profile.New("app", "st")
	other.Instances = eval.Instances
	if _, err := EvaluateClassifier(profiled, other, np()); err == nil {
		t.Error("classifier mismatch accepted")
	}
	empty := profile.New("app", "ifcb")
	if _, err := EvaluateClassifier(profiled, empty, np()); err == nil {
		t.Error("missing instance detail accepted")
	}
}

func TestSavingsEdgeCases(t *testing.T) {
	t.Parallel()
	r := &Result{PredictedComm: time.Second, DefaultComm: 0}
	if r.Savings() != 0 {
		t.Error("zero default should give zero savings")
	}
	r = &Result{PredictedComm: 2 * time.Second, DefaultComm: time.Second}
	if r.Savings() != 0 {
		t.Error("negative savings should clamp to zero")
	}
	r = &Result{PredictedComm: time.Second, DefaultComm: 4 * time.Second}
	if s := r.Savings(); s != 0.75 {
		t.Errorf("savings = %v", s)
	}
}

func TestWriteDOT(t *testing.T) {
	t.Parallel()
	p := benchProfile()
	res, err := Analyze(context.Background(), p, np(), benchApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteDOT(&sb, p, "test distribution"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"graph coign {", "test distribution",
		"fillcolor=gray25", // server-side fill
		`"gui@1"`, `"reader@1"`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// A non-remotable edge draws as a heavy black line.
	p.Edge("reader@1", "gui@1").NonRemotable = true
	res2, err := Analyze(context.Background(), p, np(), benchApp(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := res2.WriteDOT(&sb, p, "t"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "penwidth=2.0") {
		t.Error("non-remotable edge not emphasized")
	}
}
