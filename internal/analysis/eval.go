package analysis

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/profile"
)

// Classifier evaluation (paper §4.2, Tables 2 and 3). The instance
// classifier must correlate profiled classifications with instantiation
// requests in later executions. We measure, for an evaluation run (the
// paper's bigone scenarios) against profiles collected from the other
// scenarios: how many classifications profiling identified, how many
// instantiations in the evaluation run had classifications never profiled,
// the granularity (instances per classification), and the mean dot-product
// correlation between each evaluation instance's communication vector and
// its classification's profiled vector.

// ClassifierEval is one row of Table 2 (or Table 3).
type ClassifierEval struct {
	Classifier                    string
	ProfiledClassifications       int
	NewClassifications            int
	AvgInstancesPerClassification float64
	AvgCorrelation                float64
	// Stateless, ReadMostly, and Stateful count the purity grades of the
	// profiled classifications — how the granularity of a classifier
	// shifts the replication-eligible population. Filled by
	// core.ClassifierAccuracy; zero when no purity report is available.
	Stateless  int
	ReadMostly int
	Stateful   int
	// AliasEligible counts the profiled classifications graded
	// replication-eligible (stateless or read-mostly) under the
	// alias-refined purity closure, where transitive impurity propagates
	// only across may-alias edges. Always >= Stateless + ReadMostly;
	// zero when the alias analysis is unavailable.
	AliasEligible int
}

// EvaluateClassifier compares an evaluation profile against the combined
// profiled scenarios. Both must carry instance detail and come from the
// same classifier.
func EvaluateClassifier(profiled, eval *profile.Profile, np *netsim.Profile) (*ClassifierEval, error) {
	if profiled.Classifier != eval.Classifier {
		return nil, fmt.Errorf("analysis: profiles from different classifiers (%s vs %s)",
			profiled.Classifier, eval.Classifier)
	}
	if len(profiled.Instances) == 0 || len(eval.Instances) == 0 {
		return nil, fmt.Errorf("analysis: classifier evaluation requires instance detail")
	}
	res := &ClassifierEval{
		Classifier:              profiled.Classifier,
		ProfiledClassifications: len(profiled.Classifications),
	}
	if n := len(profiled.Classifications); n > 0 {
		res.AvgInstancesPerClassification = float64(profiled.TotalInstances()) / float64(n)
	}
	for id := range eval.Classifications {
		if _, seen := profiled.Classifications[id]; !seen {
			res.NewClassifications++
		}
	}

	profiledVecs := profiled.ClassificationVectors(np)
	evalVecs := eval.InstanceVectors(np)
	classOf := make(map[uint64]string, len(eval.Instances))
	for _, r := range eval.Instances {
		classOf[r.ID] = r.Classification
	}
	var sum float64
	var n int
	for instID, vec := range evalVecs {
		cid := classOf[instID]
		if cid == "" {
			continue
		}
		n++
		pv, ok := profiledVecs[cid]
		if !ok {
			// Never-profiled classification: the factory has no basis to
			// predict its behaviour. Contributes zero correlation.
			continue
		}
		sum += profile.Correlation(vec, pv)
	}
	if n > 0 {
		res.AvgCorrelation = sum / float64(n)
	}
	return res, nil
}
