// Package par provides the bounded worker pool shared by CPU-bound
// fan-out across the repository: the experiment pipelines and the
// multiway cut's per-terminal isolating cuts.
package par

import (
	"runtime"
	"sync"
)

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order. Workers are capped at GOMAXPROCS — callers are
// CPU-bound (profile replay, graph cuts), so more workers would only
// thrash. When several items fail, the error of the earliest item wins,
// so the reported failure is deterministic regardless of scheduling.
//
// fn must not touch mutable state shared between items; every call site
// either builds its own pipeline per item or operates on a private clone.
func Map[T, R any](items []T, fn func(T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
