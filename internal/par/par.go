// Package par provides the bounded worker pool shared by CPU-bound
// fan-out across the repository: the experiment pipelines, the multiway
// cut's per-terminal isolating cuts, and the analysis service's job
// workers.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Pool bounds the number of goroutines a fan-out may run at once. The
// zero value is unusable; construct pools with NewPool or use Shared.
//
// A Pool carries only a width, not a shared semaphore: every Map call
// spawns its own workers up to that width. Nested fan-outs (an
// experiment sweep whose items each run a multiway cut) therefore cannot
// deadlock against each other — they merely oversubscribe briefly, which
// the scheduler absorbs.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width; widths below one are
// clamped to one.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// shared is the process-wide default pool. Callers are CPU-bound
// (profile replay, graph cuts), so more workers than GOMAXPROCS would
// only thrash.
var shared = NewPool(runtime.GOMAXPROCS(0))

// Shared returns the process-wide default pool, sized to GOMAXPROCS.
func Shared() *Pool { return shared }

// Size returns the pool's worker width.
func (p *Pool) Size() int { return p.workers }

// Map applies fn to every item on the shared pool and returns the
// results in input order. See MapOn.
func Map[T, R any](ctx context.Context, items []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	return MapOn(ctx, shared, items, fn)
}

// MapOn applies fn to every item on pool p and returns the results in
// input order. When several items fail, the error of the earliest item
// wins, so the reported failure is deterministic regardless of
// scheduling. A cancelled context stops the dispatch of further items,
// the in-flight fn calls observe it through their ctx argument, and the
// context's error is returned unless an earlier item error exists.
//
// fn must not touch mutable state shared between items; every call site
// either builds its own pipeline per item or operates on a private clone.
func MapOn[T, R any](ctx context.Context, p *Pool, items []T, fn func(context.Context, T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	workers := p.workers
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(ctx, items[i])
			}
		}()
	}
dispatch:
	for i := range items {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
