package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndResults(t *testing.T) {
	t.Parallel()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), items, func(_ context.Context, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if len(out) != len(items) {
		t.Fatalf("got %d results, want %d", len(out), len(items))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndNilContext(t *testing.T) {
	t.Parallel()
	out, err := Map(nil, nil, func(_ context.Context, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty Map = (%v, %v), want ([], nil)", out, err)
	}
}

func TestMapEarliestErrorWins(t *testing.T) {
	t.Parallel()
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := MapOn(context.Background(), NewPool(4), items, func(_ context.Context, v int) (int, error) {
		if v >= 3 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v, nil
	})
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("err = %v, want the earliest item's error (item 3)", err)
	}
}

// TestMapCancelledBeforeStart: a context cancelled before the call starts
// must fail without running any item.
func TestMapCancelledBeforeStart(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	items := make([]int, 64)
	_, err := Map(ctx, items, func(_ context.Context, v int) (int, error) {
		ran.Add(1)
		return v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The dispatch select races cancellation against handing out work, so a
	// few items may slip through — but never the whole batch.
	if n := ran.Load(); int(n) >= len(items) {
		t.Fatalf("all %d items ran despite pre-cancelled context", n)
	}
}

// TestMapCancelMidRun: cancelling while workers are blocked inside fn must
// unblock the call and surface context.Canceled.
func TestMapCancelMidRun(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	items := make([]int, 32)
	done := make(chan error, 1)
	go func() {
		_, err := MapOn(ctx, NewPool(2), items, func(ctx context.Context, v int) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNewPoolClampsWidth(t *testing.T) {
	t.Parallel()
	if got := NewPool(0).Size(); got != 1 {
		t.Fatalf("NewPool(0).Size() = %d, want 1", got)
	}
	if got := NewPool(-5).Size(); got != 1 {
		t.Fatalf("NewPool(-5).Size() = %d, want 1", got)
	}
	if got := Shared().Size(); got < 1 {
		t.Fatalf("Shared().Size() = %d, want >= 1", got)
	}
}
