package adapt

import (
	"context"
	"math"
	"testing"

	"repro/internal/graph"
)

// TestRecutterWarmMatchesCold: repeated re-cuts of a re-priced (but
// topologically unchanged) graph through one Recutter must be warm after
// the first and agree exactly with fresh one-shot cuts.
func TestRecutterWarmMatchesCold(t *testing.T) {
	t.Parallel()
	ctx := context.Background()
	g := graph.Synthesize(graph.SynthConfig{Nodes: 800, Seed: 21})
	r := NewRecutter()
	for round := 0; round < 4; round++ {
		if round > 0 {
			// Re-price every edge, as a new network model or a fresh count
			// window would.
			for _, e := range g.EdgeNames() {
				g.SetEdgeWeight(e[0], e[1], g.EdgeWeight(e[0], e[1])*(1+0.1*float64(round)))
			}
		}
		warm, err := r.Recut(ctx, g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		cold, err := g.MinCut()
		if err != nil {
			t.Fatalf("round %d: one-shot: %v", round, err)
		}
		if math.Abs(warm.Weight-cold.Weight) > 1e-9*(1+cold.Weight) {
			t.Fatalf("round %d: warm %v vs cold %v", round, warm.Weight, cold.Weight)
		}
		for n, s := range cold.Assignment {
			if warm.Assignment[n] != s {
				t.Fatalf("round %d: node %s differs", round, n)
			}
		}
	}
	st := r.Stats()
	if st.Cuts != 4 || st.Restaged != 1 {
		t.Fatalf("stats %+v: want 4 cuts over 1 staging", st)
	}
	if st.Warm == 0 {
		t.Fatalf("stats %+v: no warm cuts", st)
	}
}
