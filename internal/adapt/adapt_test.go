package adapt

import (
	"context"
	"testing"

	"repro/internal/apps/octarine"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/logger"
	"repro/internal/profile"

	"repro/internal/classify"
)

func TestCounterCounts(t *testing.T) {
	t.Parallel()
	c := NewCounter()
	c.BeginRun("a", "s")
	c.Instantiation(logger.InstRecord{ID: 1})
	c.Call(logger.CallRecord{SrcClassification: "x", DstClassification: "y"})
	c.Call(logger.CallRecord{SrcClassification: "x", DstClassification: "y"})
	c.Call(logger.CallRecord{SrcClassification: "y", DstClassification: "z"})
	c.Release(1)
	c.EndRun()
	if c.Calls() != 3 {
		t.Fatalf("calls = %d", c.Calls())
	}
	if c.Counts()[profile.PairKey{Src: "x", Dst: "y"}] != 2 {
		t.Fatalf("counts = %v", c.Counts())
	}
}

func TestDriftMetric(t *testing.T) {
	t.Parallel()
	p := profile.New("a", "ifcb")
	p.Edge("x", "y").Record(10, 10, false)
	p.Edge("x", "y").Record(10, 10, false)
	p.Edge("y", "z").Record(10, 10, false)

	// Identical mix: zero drift.
	same := map[profile.PairKey]int64{
		{Src: "x", Dst: "y"}: 20,
		{Src: "y", Dst: "z"}: 10,
	}
	if d := Drift(p, same); d > 1e-9 {
		t.Errorf("identical mix drift = %v", d)
	}
	// Disjoint edges: full drift.
	other := map[profile.PairKey]int64{{Src: "q", Dst: "r"}: 5}
	if d := Drift(p, other); d < 0.999 {
		t.Errorf("disjoint drift = %v", d)
	}
	// Empty observation vs profiled: full drift; both empty: none.
	if d := Drift(p, nil); d < 0.999 {
		t.Errorf("empty observation drift = %v", d)
	}
	if d := Drift(profile.New("a", "ifcb"), nil); d != 0 {
		t.Errorf("both-empty drift = %v", d)
	}
}

func TestWatchdogValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewWatchdog(nil, 0.3, 10); err == nil {
		t.Error("nil profile accepted")
	}
	p := profile.New("a", "ifcb")
	for _, bad := range []float64{0, 1, -1, 2} {
		if _, err := NewWatchdog(p, bad, 10); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
	}
}

func TestWatchdogMinCalls(t *testing.T) {
	t.Parallel()
	p := profile.New("a", "ifcb")
	p.Edge("x", "y").Record(1, 1, false)
	w, err := NewWatchdog(p, 0.3, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.Logger().Call(logger.CallRecord{SrcClassification: "q", DstClassification: "r"})
	if w.ShouldReprofile() {
		t.Error("verdict before MinCalls observations")
	}
}

// TestWatchdogDetectsUsageShift is the end-to-end §6 scenario: optimize
// the application for text documents, then watch it being used for mixed
// documents — the watchdog must recommend re-profiling, while continued
// text usage must not trigger it.
func TestWatchdogDetectsUsageShift(t *testing.T) {
	t.Parallel()
	app := octarine.New()
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		t.Fatal(err)
	}
	baseline, _, err := adps.ProfileScenario(octarine.ScenOldWp0, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := adps.WriteDistribution(res); err != nil {
		t.Fatal(err)
	}

	runWith := func(scenario string) *Watchdog {
		w, err := NewWatchdog(baseline, 0.3, 50)
		if err != nil {
			t.Fatal(err)
		}
		_, err = dist.Run(dist.Config{
			App: app, Scenario: scenario, Mode: dist.ModeCoign,
			Classifier:   classify.New(classify.IFCB, 0),
			Distribution: res.Distribution,
			ExtraLogger:  w.Logger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}

	sameUsage := runWith(octarine.ScenOldWp0)
	if sameUsage.ShouldReprofile() {
		t.Errorf("profiled usage flagged as drift (%.3f)", sameUsage.Drift())
	}
	shifted := runWith(octarine.ScenOldBth)
	if !shifted.ShouldReprofile() {
		t.Errorf("usage shift not detected (drift %.3f)", shifted.Drift())
	}
	if shifted.Drift() <= sameUsage.Drift() {
		t.Errorf("drift ordering: shifted %.3f <= same %.3f",
			shifted.Drift(), sameUsage.Drift())
	}
	// Diagnostics point at the table/negotiation machinery.
	top := shifted.TopDivergences(5)
	if len(top) == 0 {
		t.Fatal("no divergences reported")
	}
	if len(shifted.TopDivergences(2)) != 2 {
		t.Error("TopDivergences did not truncate")
	}
}
