// Package adapt implements the paper's envisioned "fully automatic"
// distribution optimization (§6): the lightweight version of the runtime,
// which relocates component instantiation requests to produce the chosen
// distribution, additionally counts messages between classifications with
// only slight overhead. Run-time message counts are compared with the
// related message counts from the profiling scenarios to recognize changes
// in application usage; when usage differs significantly from the profiled
// scenarios, Coign silently re-enables profiling to re-optimize the
// distribution.
package adapt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/logger"
	"repro/internal/profile"
)

// Counter is the message-counting logger loaded alongside the null logger
// during distributed execution. It records only per-classification-pair
// call counts — no sizes, no instance detail — keeping its overhead a
// small increment over the null logger.
type Counter struct {
	counts map[profile.PairKey]int64
	calls  int64
}

// NewCounter returns an empty message counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[profile.PairKey]int64)}
}

// BeginRun implements logger.Logger.
func (c *Counter) BeginRun(app, scenario string) {}

// Instantiation implements logger.Logger.
func (c *Counter) Instantiation(rec logger.InstRecord) {}

// Call implements logger.Logger: count one message per direction.
func (c *Counter) Call(rec logger.CallRecord) {
	c.counts[profile.PairKey{Src: rec.SrcClassification, Dst: rec.DstClassification}]++
	c.calls++
}

// Release implements logger.Logger.
func (c *Counter) Release(uint64) {}

// EndRun implements logger.Logger.
func (c *Counter) EndRun() {}

// Calls returns the total calls counted.
func (c *Counter) Calls() int64 { return c.calls }

// Counts returns the per-edge call counts.
func (c *Counter) Counts() map[profile.PairKey]int64 { return c.counts }

// Drift quantifies how far observed run-time message counts diverge from a
// profile's, as 1 minus the cosine similarity between the two count
// vectors over classification pairs (0 = identical usage mix, 1 = nothing
// in common). Comparing *mixes* rather than magnitudes keeps the metric
// independent of how long the application has been running.
func Drift(profiled *profile.Profile, observed map[profile.PairKey]int64) float64 {
	var dot, na, nb float64
	for k, e := range profiled.Edges {
		v := float64(e.Calls)
		na += v * v
		if o, ok := observed[k]; ok {
			dot += v * float64(o)
		}
	}
	for _, o := range observed {
		nb += float64(o) * float64(o)
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// Watchdog accumulates run-time counts and decides when the application's
// usage has drifted far enough from the profiled scenarios that
// re-profiling (and re-partitioning) is warranted.
type Watchdog struct {
	Profile   *profile.Profile
	Threshold float64 // drift above this recommends re-profiling
	MinCalls  int64   // ignore drift until this many calls observed
	counter   *Counter
}

// NewWatchdog returns a watchdog over the profile the current distribution
// was computed from. A threshold around 0.3 distinguishes workload shifts
// from run-to-run noise; MinCalls suppresses verdicts on tiny samples.
func NewWatchdog(p *profile.Profile, threshold float64, minCalls int64) (*Watchdog, error) {
	if p == nil {
		return nil, fmt.Errorf("adapt: watchdog requires the profiled baseline")
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("adapt: threshold %v outside (0,1)", threshold)
	}
	return &Watchdog{
		Profile:   p,
		Threshold: threshold,
		MinCalls:  minCalls,
		counter:   NewCounter(),
	}, nil
}

// Logger returns the message-counting logger to install in the lightweight
// runtime.
func (w *Watchdog) Logger() *Counter { return w.counter }

// Drift returns the current divergence from the profiled usage.
func (w *Watchdog) Drift() float64 {
	return Drift(w.Profile, w.counter.Counts())
}

// ShouldReprofile reports whether observed usage has drifted beyond the
// threshold (with enough evidence).
func (w *Watchdog) ShouldReprofile() bool {
	if w.counter.Calls() < w.MinCalls {
		return false
	}
	return w.Drift() > w.Threshold
}

// TopDivergences lists the classification pairs contributing most to the
// drift: edges whose observed share differs most from their profiled
// share. Useful diagnostics for the developer usage model.
type Divergence struct {
	Src, Dst      string
	ProfiledShare float64
	ObservedShare float64
}

// TopDivergences returns up to n divergences ordered by absolute share
// difference.
func (w *Watchdog) TopDivergences(n int) []Divergence {
	var profTotal, obsTotal float64
	for _, e := range w.Profile.Edges {
		profTotal += float64(e.Calls)
	}
	for _, o := range w.counter.Counts() {
		obsTotal += float64(o)
	}
	keys := make(map[profile.PairKey]bool)
	for k := range w.Profile.Edges {
		keys[k] = true
	}
	for k := range w.counter.Counts() {
		keys[k] = true
	}
	var out []Divergence
	for k := range keys {
		var ps, os float64
		if e, ok := w.Profile.Edges[k]; ok && profTotal > 0 {
			ps = float64(e.Calls) / profTotal
		}
		if o, ok := w.counter.Counts()[k]; ok && obsTotal > 0 {
			os = float64(o) / obsTotal
		}
		out = append(out, Divergence{Src: k.Src, Dst: k.Dst, ProfiledShare: ps, ObservedShare: os})
	}
	sort.Slice(out, func(i, j int) bool {
		di := math.Abs(out[i].ObservedShare - out[i].ProfiledShare)
		dj := math.Abs(out[j].ObservedShare - out[j].ProfiledShare)
		if di != dj {
			return di > dj
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
