package adapt_test

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/logger"
	"repro/internal/profile"
)

// The watchdog compares run-time message mixes against the profiled
// scenarios and recommends re-profiling once usage drifts (paper §6).
func ExampleWatchdog() {
	profiled := profile.New("app", "ifcb")
	profiled.Edge("form", "cache").Record(64, 64, false)
	profiled.Edge("form", "cache").Record(64, 64, false)
	profiled.Edge("cache", "db").Record(64, 2048, false)

	w, err := adapt.NewWatchdog(profiled, 0.3, 1)
	if err != nil {
		panic(err)
	}
	// The lightweight runtime feeds the watchdog's counting logger.
	l := w.Logger()
	// Usage shifts to a report-heavy mix the profile never saw.
	for i := 0; i < 10; i++ {
		l.Call(logger.CallRecord{SrcClassification: "report", DstClassification: "db"})
	}
	fmt.Printf("drift=%.2f reprofile=%v\n", w.Drift(), w.ShouldReprofile())
	// Output:
	// drift=1.00 reprofile=true
}
