package adapt

import (
	"context"

	"repro/internal/graph"
)

// Recutter is the re-partitioning half of the adaptive loop: once the
// Watchdog decides usage has drifted, the ICC graph is re-priced from
// fresh counts (or a different network model) and cut again — same
// topology, new weights, over and over. A Recutter owns a graph.CutArena
// so those re-cuts reuse the CSR arrays and warm-start push-relabel from
// the previous flow instead of paying a cold cut per drift window; the
// paper's "silently re-enables profiling to re-optimize" is only honest
// if re-optimizing costs a fraction of the initial optimization.
//
// A Recutter is not safe for concurrent use.
type Recutter struct {
	arena *graph.CutArena
}

// NewRecutter returns a Recutter with an empty arena; the first cut runs
// cold and later cuts on the same topology warm-start.
func NewRecutter() *Recutter {
	return &Recutter{arena: graph.NewCutArena()}
}

// Arena exposes the underlying arena for callers that thread it through
// analysis.Options.
func (r *Recutter) Arena() *graph.CutArena { return r.arena }

// Recut cuts g through the arena: cold on first use or after a topology
// change, warm when only weights moved since the previous cut.
func (r *Recutter) Recut(ctx context.Context, g *graph.Graph) (*graph.Cut, error) {
	return g.MinCutArena(ctx, r.arena)
}

// Stats reports how the arena served its cuts (warm vs cold vs
// restaged), for surfacing in experiment rows and logs.
func (r *Recutter) Stats() graph.CutArenaStats { return r.arena.Stats() }
