// Command repolint runs the repository's custom vet pass (see package
// repolint) over one or more directory trees and exits nonzero if any
// finding survives its waivers.
//
// Usage: go run ./tools/analyzers/cmd/repolint [dir ...]
package main

import (
	"fmt"
	"os"

	"repro/tools/analyzers/repolint"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	failed := false
	for _, root := range roots {
		ds, err := repolint.CheckDir(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		for _, d := range ds {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
