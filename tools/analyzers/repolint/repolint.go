// Package repolint implements this repository's custom vet pass as a set
// of small go/analysis-style analyzers built on the standard library
// alone (go/parser + go/ast), so the gate runs in CI and offline without
// external tooling.
//
// Rules:
//
//	errwrap      errors passed to fmt.Errorf must be wrapped with %w
//	wallclock    no time.Now() in internal/dist (deterministic replay
//	             paths run on the virtual clock)
//	paralleltest test functions must call t.Parallel()
//	typeassert   no unchecked type assertions in internal/com and
//	             internal/rte (the runtime must degrade to errors, not
//	             panics, on malformed values)
//	ctxthread    internal/dist code must thread the ambient context and
//	             virtual clock, not re-create them mid-path
//	maporder     no range over a map feeding ordered output (stream
//	             writes, or slice appends never sorted afterwards) —
//	             map iteration order is randomized per run
//	bodyclose    every http.Response obtained in a function must have
//	             its Body closed there (or ownership must visibly
//	             escape) — unclosed bodies leak connections
//	errcmp       sentinel errors (ErrFoo) must be compared with
//	             errors.Is, never == / != — identity breaks under
//	             wrapping; custom Is methods are exempt
//
// A finding is waived by a comment on the same or the preceding line:
//
//	//lint:allow <rule> <reason>
package repolint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// File is one parsed source file presented to the analyzers.
type File struct {
	Path string // slash-separated, relative to the walk root
	Fset *token.FileSet
	AST  *ast.File
}

// Analyzer is one lint rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(f *File) []Diagnostic
}

// Analyzers is the repository rule set.
var Analyzers = []*Analyzer{ErrWrap, WallClock, ParallelTest, TypeAssert, CtxThread, MapOrder, BodyClose, ErrCmp}

// ErrWrap reports fmt.Errorf calls that pass an error value without
// wrapping it via %w, which breaks errors.Is/errors.As up the call chain.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "errors passed to fmt.Errorf must be wrapped with %w",
	Run: func(f *File) []Diagnostic {
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
				return true
			}
			format, ok := stringLit(call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				return true
			}
			for _, arg := range call.Args[1:] {
				if name, isErr := errIdent(arg); isErr {
					out = append(out, Diagnostic{
						Pos:  f.Fset.Position(call.Pos()),
						Rule: "errwrap",
						Message: fmt.Sprintf(
							"fmt.Errorf passes error %q without %%w; wrap it or discard it explicitly", name),
					})
					break
				}
			}
			return true
		})
		return out
	},
}

// WallClock reports time.Now() calls in the distributed runtime: dist runs
// on a deterministic virtual clock, and wall time silently breaks replay.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now() in internal/dist deterministic-replay paths",
	Run: func(f *File) []Diagnostic {
		if !strings.Contains(f.Path, "internal/dist/") || strings.HasSuffix(f.Path, "_test.go") {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(call.Fun, "time", "Now") {
				return true
			}
			out = append(out, Diagnostic{
				Pos:     f.Fset.Position(call.Pos()),
				Rule:    "wallclock",
				Message: "time.Now() in internal/dist; use the virtual clock for anything replayed",
			})
			return true
		})
		return out
	},
}

// ParallelTest reports Test functions that never call t.Parallel: the
// suite is large and serial tests stretch CI wall-clock for no reason.
var ParallelTest = &Analyzer{
	Name: "paralleltest",
	Doc:  "test functions must call t.Parallel()",
	Run: func(f *File) []Diagnostic {
		if !strings.HasSuffix(f.Path, "_test.go") {
			return nil
		}
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || fn.Body == nil {
				continue
			}
			param, ok := testingTParam(fn)
			if !ok || !strings.HasPrefix(fn.Name.Name, "Test") || fn.Name.Name == "TestMain" {
				continue
			}
			if !callsMethod(fn.Body, param, "Parallel") {
				out = append(out, Diagnostic{
					Pos:     f.Fset.Position(fn.Pos()),
					Rule:    "paralleltest",
					Message: fmt.Sprintf("%s does not call %s.Parallel()", fn.Name.Name, param),
				})
			}
		}
		return out
	},
}

// TypeAssert reports unchecked type assertions x.(T) in the COM runtime
// packages. A wrong dynamic type there must surface as an error the
// caller can handle — an interception layer that panics on a malformed
// value takes the whole process with it. The comma-ok form and type
// switches are fine.
var TypeAssert = &Analyzer{
	Name: "typeassert",
	Doc:  "no unchecked type assertions in internal/com and internal/rte",
	Run: func(f *File) []Diagnostic {
		if !strings.Contains(f.Path, "internal/com/") && !strings.Contains(f.Path, "internal/rte/") {
			return nil
		}
		checked := checkedAsserts(f.AST)
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ta, ok := n.(*ast.TypeAssertExpr)
			if !ok || ta.Type == nil || checked[ta] {
				return true
			}
			out = append(out, Diagnostic{
				Pos:     f.Fset.Position(ta.Pos()),
				Rule:    "typeassert",
				Message: "unchecked type assertion; use the comma-ok form and return an error",
			})
			return true
		})
		return out
	},
}

// checkedAsserts collects the type assertions that appear as the sole RHS
// of a two-value assignment (v, ok := x.(T)), i.e. the comma-ok form.
func checkedAsserts(root ast.Node) map[*ast.TypeAssertExpr]bool {
	out := make(map[*ast.TypeAssertExpr]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == 2 && len(st.Rhs) == 1 {
				if ta, ok := st.Rhs[0].(*ast.TypeAssertExpr); ok {
					out[ta] = true
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == 2 && len(st.Values) == 1 {
				if ta, ok := st.Values[0].(*ast.TypeAssertExpr); ok {
					out[ta] = true
				}
			}
		}
		return true
	})
	return out
}

// CtxThread reports fresh context or virtual-clock construction inside the
// distributed runtime. Both carry the deterministic-replay state for an
// entire run: re-creating either mid-path silently forks that state, so
// they must be threaded from the caller. clock.go (the clock's own
// definition) and tests are exempt.
var CtxThread = &Analyzer{
	Name: "ctxthread",
	Doc:  "thread context and the virtual clock through internal/dist, do not re-create them",
	Run: func(f *File) []Diagnostic {
		if !strings.Contains(f.Path, "internal/dist/") ||
			strings.HasSuffix(f.Path, "_test.go") ||
			strings.HasSuffix(f.Path, "/clock.go") {
			return nil
		}
		var out []Diagnostic
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var msg string
			switch {
			case isPkgFunc(call.Fun, "context", "Background"), isPkgFunc(call.Fun, "context", "TODO"):
				msg = "fresh context in internal/dist; thread the caller's context instead"
			case isFuncNamed(call.Fun, "NewClock"):
				msg = "virtual clock constructed mid-path; thread the run's clock instead"
			default:
				return true
			}
			out = append(out, Diagnostic{
				Pos:     f.Fset.Position(call.Pos()),
				Rule:    "ctxthread",
				Message: msg,
			})
			return true
		})
		return out
	},
}

// isFuncNamed reports whether e names the function fun, either bare or
// through a package selector.
func isFuncNamed(e ast.Expr, fun string) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name == fun
	case *ast.SelectorExpr:
		return v.Sel.Name == fun
	}
	return false
}

// isPkgFunc reports whether e is a selector pkg.Fun on a plain package
// identifier.
func isPkgFunc(e ast.Expr, pkg, fun string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fun {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg && id.Obj == nil
}

// stringLit extracts a constant string from a literal or a concatenation
// of literals.
func stringLit(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		return v.Value, true
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, lok := stringLit(v.X)
		r, rok := stringLit(v.Y)
		return l + r, lok && rok
	}
	return "", false
}

// errIdent reports whether the expression is an identifier that by naming
// convention holds an error.
func errIdent(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	n := id.Name
	if n == "err" || strings.HasSuffix(n, "Err") || strings.HasSuffix(n, "err") {
		return n, true
	}
	return "", false
}

// testingTParam returns the name of the *testing.T parameter of a test
// function signature func(x *testing.T).
func testingTParam(fn *ast.FuncDecl) (string, bool) {
	params := fn.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return "", false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "T" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "testing" {
		return "", false
	}
	return params.List[0].Names[0].Name, true
}

// callsMethod reports whether the body contains a call recv.method(...).
func callsMethod(body *ast.BlockStmt, recv, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// waivers collects the rules waived per line from //lint:allow comments.
// A waiver on line N covers findings on lines N and N+1.
func waivers(f *File) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "lint:allow ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue // a waiver requires a reason
			}
			line := f.Fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if out[l] == nil {
					out[l] = make(map[string]bool)
				}
				out[l][fields[0]] = true
			}
		}
	}
	return out
}

// CheckFile parses one file and runs every analyzer, dropping waived
// findings.
func CheckFile(fset *token.FileSet, path string, src any) ([]Diagnostic, error) {
	astf, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{Path: filepath.ToSlash(path), Fset: fset, AST: astf}
	w := waivers(f)
	var out []Diagnostic
	for _, a := range Analyzers {
		for _, d := range a.Run(f) {
			if w[d.Pos.Line][d.Rule] {
				continue
			}
			out = append(out, d)
		}
	}
	return out, nil
}

// CheckDir walks a directory tree and checks every non-generated Go file.
func CheckDir(root string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var out []Diagnostic
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		ds, err := CheckFile(fset, path, nil)
		if err != nil {
			return err
		}
		out = append(out, ds...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out, nil
}
