package repolint

import (
	"strings"
	"testing"
)

func TestErrCmpFlagsIdentityComparison(t *testing.T) {
	t.Parallel()
	src := `package p
import "errors"
var ErrBadSpec = errors.New("bad spec")
func f(err error) bool {
	return err == ErrBadSpec
}
func g(err error) bool {
	return err != ErrBadSpec
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 2 {
		t.Fatalf("diagnostics = %v, want both comparisons flagged", ds)
	}
	for _, d := range ds {
		if d.Rule != "errcmp" || !strings.Contains(d.Message, "ErrBadSpec") || !strings.Contains(d.Message, "errors.Is") {
			t.Fatalf("diagnostic = %v", d)
		}
	}
}

func TestErrCmpPkgQualifiedAndUnexported(t *testing.T) {
	t.Parallel()
	src := `package p
import "io/fs"
import "errors"
var errNotReady = errors.New("not ready")
func f(err error) bool {
	return err == fs.ErrNotExist || errNotReady == err
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 2 {
		t.Fatalf("diagnostics = %v, want the qualified and the unexported sentinel flagged", ds)
	}
	if !strings.Contains(ds[0].Message, "fs.ErrNotExist") || !strings.Contains(ds[1].Message, "errNotReady") {
		t.Fatalf("diagnostics = %v", ds)
	}
}

func TestErrCmpSkipsIsMethods(t *testing.T) {
	t.Parallel()
	// The errors.Is protocol: a custom Is method compares against the
	// sentinel by identity on purpose.
	src := `package p
import "errors"
var ErrBadSpec = errors.New("bad spec")
type SpecError struct{}
func (e *SpecError) Error() string { return "spec" }
func (e *SpecError) Is(target error) bool { return target == ErrBadSpec }
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("Is method flagged: %v", ds)
	}
	// A free function named Is gets no exemption — only methods implement
	// the protocol.
	free := strings.Replace(src, "func (e *SpecError) Is(", "func Is(", 1)
	if ds := check(t, "internal/x/x.go", free); len(ds) != 1 {
		t.Fatalf("free Is function not flagged: %v", ds)
	}
}

func TestErrCmpIgnoresNonSentinelNames(t *testing.T) {
	t.Parallel()
	src := `package p
func f(err error, errs []error, n int) bool {
	return err == nil || err != nil || len(errs) == n
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("non-sentinel comparisons flagged: %v", ds)
	}
}

func TestErrCmpWaiver(t *testing.T) {
	t.Parallel()
	src := `package p
import "errors"
var ErrDone = errors.New("done")
func f(err error) bool {
	//lint:allow errcmp identity intended here
	return err == ErrDone
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("waived finding reported: %v", ds)
	}
}
