package repolint

import (
	"strings"
	"testing"
)

func TestBodyCloseLeakFlagged(t *testing.T) {
	t.Parallel()
	src := `package p
import ("io"; "net/http")
func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 1 || ds[0].Rule != "bodyclose" || !strings.Contains(ds[0].Message, "resp") {
		t.Fatalf("diagnostics = %v, want one bodyclose naming resp", ds)
	}
}

func TestBodyCloseDeferredCloseIsClean(t *testing.T) {
	t.Parallel()
	src := `package p
import ("io"; "net/http")
func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("deferred Close flagged: %v", ds)
	}
}

func TestBodyCloseDirectCloseIsClean(t *testing.T) {
	t.Parallel()
	src := `package p
import "net/http"
func ping(url string) error {
	resp, err := http.Head(url)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("direct Close flagged: %v", ds)
	}
}

func TestBodyCloseClientDoFlagged(t *testing.T) {
	t.Parallel()
	src := `package p
import "net/http"
func do(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_ = resp.StatusCode
	return nil
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 1 || ds[0].Rule != "bodyclose" {
		t.Fatalf("diagnostics = %v, want one bodyclose for client.Do", ds)
	}
}

func TestBodyCloseEscapeIsClean(t *testing.T) {
	t.Parallel()
	// Returning the response transfers Close ownership to the caller.
	returned := `package p
import "net/http"
func open(url string) (*http.Response, error) {
	resp, err := http.Get(url)
	return resp, err
}
`
	if ds := check(t, "internal/x/x.go", returned); len(ds) != 0 {
		t.Fatalf("returned response flagged: %v", ds)
	}
	// Passing the whole response to a helper does too.
	passed := `package p
import "net/http"
func handle(*http.Response) {}
func run(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	handle(resp)
	return nil
}
`
	if ds := check(t, "internal/x/x.go", passed); len(ds) != 0 {
		t.Fatalf("passed-on response flagged: %v", ds)
	}
}

func TestBodyCloseUnrelatedCallsIgnored(t *testing.T) {
	t.Parallel()
	// .Get on a non-client receiver must not be mistaken for a request.
	src := `package p
type store struct{}
func (store) Get(k string) (string, error) { return "", nil }
func read(s store) error {
	v, err := s.Get("k")
	_ = v
	return err
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("non-http Get flagged: %v", ds)
	}
}

func TestBodyCloseWaiver(t *testing.T) {
	t.Parallel()
	src := `package p
import "net/http"
func probe(url string) error {
	//lint:allow bodyclose the process exits immediately after
	resp, err := http.Get(url)
	_ = resp
	return err
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("waived finding still reported: %v", ds)
	}
}
