package repolint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// ErrCmp reports == and != comparisons against sentinel error values
// (exported package-level errors named ErrFoo, bare or pkg-qualified).
// Identity comparison breaks the moment anyone wraps the sentinel with
// fmt.Errorf("...: %w", ...) — which the errwrap rule actively pushes
// toward — so call sites must use errors.Is instead.
//
// The one place identity IS the contract is a custom Is method: errors.Is
// unwraps the chain and asks each link `err.Is(target)`, and that method
// compares against the sentinel by identity on purpose. Comparisons inside
// any method named Is are therefore exempt.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "compare sentinel errors with errors.Is, not == or !=",
	Run: func(f *File) []Diagnostic {
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Recv != nil && fn.Name.Name == "Is" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				name, ok := sentinelErr(be.X)
				if !ok {
					name, ok = sentinelErr(be.Y)
				}
				if !ok {
					return true
				}
				out = append(out, Diagnostic{
					Pos:  f.Fset.Position(be.Pos()),
					Rule: "errcmp",
					Message: fmt.Sprintf(
						"%s compared against sentinel %s with %s; use errors.Is so wrapped errors still match",
						exprString(be), name, be.Op),
				})
				return true
			})
		}
		return out
	},
}

// sentinelErr reports whether the expression names a sentinel error by the
// ErrFoo convention, either bare or through a package selector (pkg.ErrFoo).
func sentinelErr(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if isErrName(v.Name) {
			return v.Name, true
		}
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok && id.Obj == nil && isErrName(v.Sel.Name) {
			return id.Name + "." + v.Sel.Name, true
		}
	}
	return "", false
}

// isErrName matches the sentinel naming convention: ErrFoo or errFoo with
// a camel-case boundary right after the prefix, so ErrBadSpec and
// errNotReady match but err, Errorf, and errs do not.
func isErrName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Err")
	if !ok {
		rest, ok = strings.CutPrefix(name, "err")
	}
	if !ok || rest == "" {
		return false
	}
	return unicode.IsUpper(rune(rest[0]))
}

// exprString renders a short label for the non-sentinel operand of the
// comparison (best effort; falls back to "error value").
func exprString(be *ast.BinaryExpr) string {
	other := be.X
	if _, ok := sentinelErr(be.X); ok {
		other = be.Y
	}
	switch v := other.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name + "." + v.Sel.Name
		}
	case *ast.CallExpr:
		if name, ok := funcLabel(v.Fun); ok {
			return name + "(...)"
		}
	}
	return "error value"
}

func funcLabel(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		return v.Sel.Name, true
	}
	return "", false
}
