package repolint

import (
	"strings"
	"testing"
)

func TestMapOrderAppendWithoutSort(t *testing.T) {
	t.Parallel()
	src := `package p
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 1 || ds[0].Rule != "maporder" || !strings.Contains(ds[0].Message, "out") {
		t.Fatalf("diagnostics = %v, want one maporder naming out", ds)
	}
}

func TestMapOrderSortedAppendIsClean(t *testing.T) {
	t.Parallel()
	src := `package p
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("sorted collect-then-iterate flagged: %v", ds)
	}
	// sort.Slice with the target as first argument also counts.
	slice := strings.Replace(src, "sort.Strings(out)",
		"sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })", 1)
	if ds := check(t, "internal/x/x.go", slice); len(ds) != 0 {
		t.Fatalf("sort.Slice version flagged: %v", ds)
	}
}

func TestMapOrderDirectEmission(t *testing.T) {
	t.Parallel()
	src := `package p
import (
	"fmt"
	"os"
)
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v)
	}
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 1 || ds[0].Rule != "maporder" || !strings.Contains(ds[0].Message, "output emitted") {
		t.Fatalf("diagnostics = %v, want one maporder emission finding", ds)
	}
}

func TestMapOrderLocalMakeAndLiteral(t *testing.T) {
	t.Parallel()
	src := `package p
func f() []string {
	m := make(map[string]int)
	lit := map[string]bool{"a": true}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	for k := range lit {
		out = append(out, k)
	}
	return out
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 2 {
		t.Fatalf("diagnostics = %v, want two maporder findings", ds)
	}
}

func TestMapOrderStructField(t *testing.T) {
	t.Parallel()
	src := `package p
type G struct {
	edges map[int]float64
}
func (g *G) dump() []int {
	var out []int
	for e := range g.edges {
		out = append(out, e)
	}
	return out
}
`
	ds := check(t, "internal/x/x.go", src)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "g.edges") {
		t.Fatalf("diagnostics = %v, want one maporder naming g.edges", ds)
	}
}

func TestMapOrderNonMapAndNonOrderedUsesClean(t *testing.T) {
	t.Parallel()
	src := `package p
func f(names []string, m map[string]float64) float64 {
	var out []string
	for _, n := range names {
		out = append(out, n)
	}
	_ = out
	// Accumulation is order-insensitive: no finding.
	var total float64
	for _, w := range m {
		total += w
	}
	return total
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("order-insensitive uses flagged: %v", ds)
	}
}

func TestMapOrderWaiver(t *testing.T) {
	t.Parallel()
	src := `package p
func keys(m map[string]int) []string {
	var out []string
	//lint:allow maporder caller sorts
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	if ds := check(t, "internal/x/x.go", src); len(ds) != 0 {
		t.Fatalf("waived maporder finding still reported: %v", ds)
	}
}
