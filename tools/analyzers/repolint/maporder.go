package repolint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// MapOrder reports range statements over map values whose iteration order
// leaks into output: a body that writes to a stream or encoder directly,
// or appends to a slice that is never sorted afterwards in the same
// function. Go randomizes map iteration order per run, so such loops make
// artifacts (JSON reports, tables, serialized profiles) differ
// byte-for-byte between identical runs — the determinism bugs this repo
// keeps re-fixing. The compliant pattern collects the keys, sorts them,
// and ranges over the sorted slice.
//
// Detection is file-local and syntactic: an expression counts as a map
// when this file declares it with a map type — a var/param/field
// declaration, a make(map[...]) assignment, or a map composite literal.
// Maps declared in other files are invisible to the rule; it errs toward
// silence rather than false positives.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no range over a map feeding ordered output without an intervening sort",
	Run: func(f *File) []Diagnostic {
		mapIdents, mapFields := mapDecls(f.AST)
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locals := localMapNames(fn, mapIdents)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapExpr(rs.X, locals, mapFields) {
					return true
				}
				rangedName := exprText(rs.X)
				if call := emissionInBody(rs.Body); call != nil {
					out = append(out, Diagnostic{
						Pos:  f.Fset.Position(call.Pos()),
						Rule: "maporder",
						Message: fmt.Sprintf(
							"output emitted while ranging over map %s; iteration order is randomized — range over sorted keys instead", rangedName),
					})
				}
				for _, target := range appendTargets(rs.Body) {
					if sortedAfter(fn.Body, target, rs.End()) {
						continue
					}
					out = append(out, Diagnostic{
						Pos:  f.Fset.Position(rs.Pos()),
						Rule: "maporder",
						Message: fmt.Sprintf(
							"range over map %s appends to %s, which is never sorted afterwards; iteration order is randomized — sort %s or range over sorted keys", rangedName, target, target),
					})
				}
				return true
			})
		}
		return out
	},
}

// mapDecls scans a file for names declared with a map type: package-level
// and local var specs (mapIdents is seeded here; function-local discovery
// adds to a copy), and struct field names (matched through selectors).
func mapDecls(root *ast.File) (mapIdents map[string]bool, mapFields map[string]bool) {
	mapIdents = make(map[string]bool)
	mapFields = make(map[string]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ValueSpec:
			if isMapType(v.Type) {
				for _, name := range v.Names {
					mapIdents[name.Name] = true
				}
			}
		case *ast.StructType:
			for _, field := range v.Fields.List {
				if !isMapType(field.Type) {
					continue
				}
				for _, name := range field.Names {
					mapFields[name.Name] = true
				}
			}
		}
		return true
	})
	return mapIdents, mapFields
}

// localMapNames extends the file-level map-identifier set with the
// function's own map-typed parameters and short-variable declarations
// initialized from make(map[...]) or a map composite literal.
func localMapNames(fn *ast.FuncDecl, fileLevel map[string]bool) map[string]bool {
	names := make(map[string]bool, len(fileLevel))
	for k := range fileLevel {
		names[k] = true
	}
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if !isMapType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				names[name.Name] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			if !mapValuedExpr(rhs) {
				continue
			}
			if id, ok := st.Lhs[i].(*ast.Ident); ok {
				names[id.Name] = true
			}
		}
		return true
	})
	return names
}

// mapValuedExpr reports whether the expression syntactically constructs a
// map: make(map[K]V, ...) or map[K]V{...}.
func mapValuedExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			return isMapType(v.Args[0])
		}
	case *ast.CompositeLit:
		return isMapType(v.Type)
	}
	return false
}

func isMapType(e ast.Expr) bool {
	_, ok := e.(*ast.MapType)
	return ok
}

// isMapExpr reports whether the ranged expression resolves to a known
// map: a bare identifier in the local set, or a selector whose field name
// is declared as a map in this file's struct types.
func isMapExpr(e ast.Expr, locals, fields map[string]bool) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return locals[v.Name]
	case *ast.SelectorExpr:
		return fields[v.Sel.Name]
	}
	return false
}

// exprText renders the small expressions this analyzer matches (an
// identifier or a selector chain) for diagnostics.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	}
	return "?"
}

// emissionInBody returns the first call inside the loop body that writes
// order-sensitive output directly: a fmt print/fprint family call or a
// method call named Encode, Write, or WriteString.
func emissionInBody(body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, isPkg := sel.X.(*ast.Ident); isPkg && id.Name == "fmt" && id.Obj == nil {
			if strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint") {
				found = call
				return false
			}
			return true
		}
		switch sel.Sel.Name {
		case "Encode", "Write", "WriteString":
			found = call
			return false
		}
		return true
	})
	return found
}

// appendTargets returns the names of variables grown via
// `x = append(x, ...)` (or any append assigned to an identifier) inside
// the loop body.
func appendTargets(body *ast.BlockStmt) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if id, ok := st.Lhs[0].(*ast.Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// sortedAfter reports whether, anywhere after pos in the function body, a
// sort.* or slices.Sort* call receives the named slice as an argument.
func sortedAfter(body *ast.BlockStmt, target string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Obj != nil || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
