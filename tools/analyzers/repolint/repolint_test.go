package repolint

import (
	"go/token"
	"strings"
	"testing"
)

func check(t *testing.T, path, src string) []Diagnostic {
	t.Helper()
	ds, err := CheckFile(token.NewFileSet(), path, src)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func rules(ds []Diagnostic) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Rule)
	}
	return out
}

func TestErrWrap(t *testing.T) {
	t.Parallel()
	src := `package p
import "fmt"
func f(err error) error {
	if err != nil {
		return fmt.Errorf("doing thing: %v", err)
	}
	return nil
}
`
	ds := check(t, "p/f.go", src)
	if len(ds) != 1 || ds[0].Rule != "errwrap" {
		t.Fatalf("diagnostics = %v, want one errwrap", ds)
	}

	good := strings.Replace(src, "%v", "%w", 1)
	if ds := check(t, "p/f.go", good); len(ds) != 0 {
		t.Fatalf("%%w version still flagged: %v", ds)
	}

	// Non-error arguments are not flagged.
	other := `package p
import "fmt"
func f(name string) error { return fmt.Errorf("bad name %q", name) }
`
	if ds := check(t, "p/f.go", other); len(ds) != 0 {
		t.Fatalf("non-error args flagged: %v", ds)
	}

	// Concatenated format strings are still parsed.
	concat := `package p
import "fmt"
func f(err error) error { return fmt.Errorf("a: " + "%v", err) }
`
	if ds := check(t, "p/f.go", concat); len(ds) != 1 {
		t.Fatalf("concatenated format not flagged: %v", ds)
	}
}

func TestWallClock(t *testing.T) {
	t.Parallel()
	src := `package dist
import "time"
func now() time.Time { return time.Now() }
`
	ds := check(t, "internal/dist/clock.go", src)
	if len(ds) != 1 || ds[0].Rule != "wallclock" {
		t.Fatalf("diagnostics = %v, want one wallclock", ds)
	}
	// Outside internal/dist the rule does not apply.
	if ds := check(t, "internal/netsim/clock.go", src); len(ds) != 0 {
		t.Fatalf("wallclock fired outside internal/dist: %v", ds)
	}
	// Test files are exempt.
	if ds := check(t, "internal/dist/clock_test.go", src); len(ds) != 0 {
		t.Fatalf("wallclock fired in a test file: %v", ds)
	}
}

func TestParallelTest(t *testing.T) {
	t.Parallel()
	src := `package p
import "testing"
func TestSerial(t *testing.T) { _ = t }
func TestParallelOK(t *testing.T) { t.Parallel() }
func TestMain(m *testing.M) {}
func helper(t *testing.T) {}
func BenchmarkX(b *testing.B) {}
`
	ds := check(t, "p/p_test.go", src)
	if len(ds) != 1 || ds[0].Rule != "paralleltest" || !strings.Contains(ds[0].Message, "TestSerial") {
		t.Fatalf("diagnostics = %v, want one paralleltest for TestSerial", ds)
	}
	// The rule only applies to _test.go files.
	if ds := check(t, "p/p.go", src); len(ds) != 0 {
		t.Fatalf("paralleltest fired outside a test file: %v", ds)
	}
}

func TestTypeAssert(t *testing.T) {
	t.Parallel()
	src := `package com
func f(v any) *int {
	return v.(*int)
}
`
	ds := check(t, "internal/com/env.go", src)
	if len(ds) != 1 || ds[0].Rule != "typeassert" {
		t.Fatalf("diagnostics = %v, want one typeassert", ds)
	}
	// internal/rte is in scope too, including its tests.
	if ds := check(t, "internal/rte/rte_test.go", src); len(ds) != 1 {
		t.Fatalf("typeassert did not fire in internal/rte test: %v", ds)
	}
	// Outside the runtime packages the rule does not apply.
	if ds := check(t, "internal/apps/octarine/gui.go", src); len(ds) != 0 {
		t.Fatalf("typeassert fired outside internal/com and internal/rte: %v", ds)
	}
	// The comma-ok forms and type switches are fine.
	good := `package com
var global, globalOK = any(1).(int)
func f(v any) (*int, bool) {
	p, ok := v.(*int)
	switch v.(type) {
	case string:
	}
	switch w := v.(type) {
	case int:
		_ = w
	}
	return p, ok
}
`
	if ds := check(t, "internal/com/env.go", good); len(ds) != 0 {
		t.Fatalf("checked assertions flagged: %v", ds)
	}
}

func TestCtxThread(t *testing.T) {
	t.Parallel()
	src := `package dist
import "context"
func f() {
	ctx := context.Background()
	_ = ctx
	_ = context.TODO()
	clock := NewClock(nil, nil)
	_ = clock
}
`
	ds := check(t, "internal/dist/run.go", src)
	if got := rules(ds); len(got) != 3 || got[0] != "ctxthread" {
		t.Fatalf("diagnostics = %v, want three ctxthread", ds)
	}
	// clock.go itself constructs the clock; it is exempt.
	if ds := check(t, "internal/dist/clock.go", src); len(ds) != 0 {
		t.Fatalf("ctxthread fired in clock.go: %v", ds)
	}
	// Tests are exempt.
	if ds := check(t, "internal/dist/run_test.go", src); len(ds) != 0 {
		t.Fatalf("ctxthread fired in a test file: %v", ds)
	}
	// Outside internal/dist the rule does not apply.
	if ds := check(t, "internal/core/adps.go", src); len(ds) != 0 {
		t.Fatalf("ctxthread fired outside internal/dist: %v", ds)
	}
}

func TestWaivers(t *testing.T) {
	t.Parallel()
	sameLine := `package dist
import "time"
func now() time.Time { return time.Now() } //lint:allow wallclock real time wanted
`
	if ds := check(t, "internal/dist/clock.go", sameLine); len(ds) != 0 {
		t.Fatalf("same-line waiver ignored: %v", ds)
	}
	precedingLine := `package dist
import "time"
func now() time.Time {
	//lint:allow wallclock real time wanted
	return time.Now()
}
`
	if ds := check(t, "internal/dist/clock.go", precedingLine); len(ds) != 0 {
		t.Fatalf("preceding-line waiver ignored: %v", ds)
	}
	// A waiver for a different rule does not apply.
	wrongRule := `package dist
import "time"
func now() time.Time {
	//lint:allow errwrap not the right rule
	return time.Now()
}
`
	if ds := check(t, "internal/dist/clock.go", wrongRule); len(ds) != 1 {
		t.Fatalf("wrong-rule waiver suppressed the finding: %v", ds)
	}
	// A waiver without a reason is invalid and does not apply.
	noReason := `package dist
import "time"
func now() time.Time {
	//lint:allow wallclock
	return time.Now()
}
`
	if ds := check(t, "internal/dist/clock.go", noReason); len(ds) != 1 {
		t.Fatalf("reasonless waiver suppressed the finding: %v", ds)
	}
}

func TestCheckDirOnThisPackage(t *testing.T) {
	t.Parallel()
	// The lint tool must hold itself to its own rules.
	ds, err := CheckDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("repolint has findings on itself: %v", ds)
	}
}
