package repolint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// BodyClose reports http.Response values whose Body is never closed in
// the function that obtained them. An unclosed body leaks the underlying
// connection and, against a keep-alive server, eventually starves the
// client's connection pool — the failure only shows up under sustained
// load, long after the leaking call.
//
// Detection is file-local and syntactic, erring toward silence: a
// response is a variable assigned from http.Get/Post/PostForm/Head or
// from a .Do/.Get/.Post call on a receiver whose name ends in "client"
// or "Client" (http.DefaultClient included). The variable is compliant
// when the function calls <v>.Body.Close() (directly or deferred), or
// when ownership escapes — the variable is returned, passed whole to
// another call, stashed in an assignment, or sent on a channel.
var BodyClose = &Analyzer{
	Name: "bodyclose",
	Doc:  "close http.Response.Body on every response obtained in-function",
	Run: func(f *File) []Diagnostic {
		var out []Diagnostic
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			for _, rv := range responseVars(fn.Body) {
				if closesBody(fn.Body, rv.name) || respEscapes(fn.Body, rv.name) {
					continue
				}
				out = append(out, Diagnostic{
					Pos:  f.Fset.Position(rv.pos),
					Rule: "bodyclose",
					Message: fmt.Sprintf(
						"response %s.Body is never closed; defer %s.Body.Close() after the error check", rv.name, rv.name),
				})
			}
		}
		return out
	},
}

type respVar struct {
	name string
	pos  token.Pos
}

// responseVars collects variables assigned from recognized
// response-producing calls, first assignment wins.
func responseVars(body *ast.BlockStmt) []respVar {
	var out []respVar
	seen := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isResponseCall(call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" || seen[id.Name] {
			return true
		}
		seen[id.Name] = true
		out = append(out, respVar{name: id.Name, pos: as.Pos()})
		return true
	})
	return out
}

// isResponseCall recognizes the stdlib calls that hand the caller an
// *http.Response it must close.
func isResponseCall(call *ast.CallExpr) bool {
	for _, fun := range []string{"Get", "Post", "PostForm", "Head"} {
		if isPkgFunc(call.Fun, "http", fun) {
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Do", "Get", "Post", "PostForm", "Head":
	default:
		return false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return strings.HasSuffix(x.Name, "client") || strings.HasSuffix(x.Name, "Client")
	case *ast.SelectorExpr:
		// http.DefaultClient.Do(...), s.httpClient.Do(...)
		return x.Sel.Name == "DefaultClient" ||
			strings.HasSuffix(x.Sel.Name, "client") || strings.HasSuffix(x.Sel.Name, "Client")
	}
	return false
}

// closesBody reports whether the body contains <name>.Body.Close(),
// direct or deferred.
func closesBody(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		closeSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || closeSel.Sel.Name != "Close" {
			return true
		}
		bodySel, ok := closeSel.X.(*ast.SelectorExpr)
		if !ok || bodySel.Sel.Name != "Body" {
			return true
		}
		if id, ok := bodySel.X.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// respEscapes reports whether the whole response variable leaves the
// function: returned, passed bare as a call argument, re-assigned
// somewhere else, address taken, or sent on a channel. Reading
// <name>.Body does NOT count — the reader still owes the Close.
func respEscapes(body *ast.BlockStmt, name string) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if isIdent(r, name) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			for _, a := range v.Args {
				if isIdent(a, name) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range v.Rhs {
				if _, isCall := r.(*ast.CallExpr); isCall {
					continue // the defining assignment itself
				}
				if isIdent(r, name) {
					escaped = true
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND && isIdent(v.X, name) {
				escaped = true
			}
		case *ast.SendStmt:
			if isIdent(v.Value, name) {
				escaped = true
			}
		}
		return !escaped
	})
	return escaped
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
