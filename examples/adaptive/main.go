// Adaptive re-partitioning across network generations (paper §4.4): a
// manual distribution is static, but Coign can produce a new distribution
// for every execution. Changes in the underlying network — ISDN to
// 10BaseT to ATM to SAN — shift bandwidth-to-latency trade-offs by more
// than an order of magnitude; this example profiles one scenario once and
// re-cuts the same ICC graph for each network.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps/octarine"
	"repro/internal/experiments"
)

func main() {
	networks := []string{"ISDN", "10BaseT", "100BaseT", "ATM", "SAN", "loopback"}
	for _, scen := range []string{octarine.ScenOldWp7, octarine.ScenOldBth} {
		fmt.Printf("=== %s ===\n", scen)
		rows, err := experiments.Adaptive(context.Background(), scen, networks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12s %12s %12s %9s\n",
			"network", "srv inst", "predicted", "default", "savings")
		for _, r := range rows {
			fmt.Printf("%-10s %12d %11.3fs %11.3fs %8.0f%%\n",
				r.Network, r.ServerInstances, r.PredictedComm.Seconds(),
				r.DefaultComm.Seconds(), r.Savings*100)
		}
		fmt.Println()
	}
	fmt.Println("The same profile yields a different optimal distribution per network;")
	fmt.Println("Coign writes whichever one matches today's environment into the binary.")
}
