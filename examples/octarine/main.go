// Octarine document-type explorer: reproduces the paper's central
// observation (§4.4, Figures 5, 7, 8) that the optimal distribution of one
// application changes radically with the user's predominant document type:
//
//   - a text-only document moves just the reader and text-properties
//     components to the server;
//
//   - a table-only document moves only the reader;
//
//   - a text document with a handful of embedded tables moves the entire
//     page-placement negotiation — hundreds of components.
//
//     go run ./examples/octarine
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/apps/octarine"
	"repro/internal/core"
)

func main() {
	cases := []struct {
		scenario string
		note     string
	}{
		{octarine.ScenOldWp0, "5-page text document (small: default already optimal)"},
		{octarine.ScenOldWp7, "208-page text document (reader + text props move)"},
		{octarine.ScenOldTb0, "5-page table (only the reader moves)"},
		{octarine.ScenOldTb3, "150-page table (scan stays with the data)"},
		{octarine.ScenOldBth, "5-page text with tables (negotiation cluster moves)"},
	}
	fmt.Printf("%-10s %6s %6s %10s %10s %8s\n",
		"scenario", "total", "server", "default", "coign", "savings")
	for _, c := range cases {
		adps := core.New(octarine.New())
		rep, err := adps.ScenarioExperiment(context.Background(), c.scenario)
		if err != nil {
			log.Fatalf("%s: %v", c.scenario, err)
		}
		fmt.Printf("%-10s %6d %6d %9.3fs %9.3fs %7.0f%%   %s\n",
			rep.Scenario, rep.TotalInstances, rep.ServerInstances,
			rep.DefaultComm.Seconds(), rep.CoignComm.Seconds(),
			rep.Savings*100, c.note)
	}

	// Drill into the mixed document: what moved?
	fmt.Println("\nserver-side components for the mixed document:")
	adps := core.New(octarine.New())
	if err := adps.Instrument(); err != nil {
		log.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(octarine.ScenOldBth, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	byClass := map[string]int64{}
	for _, cp := range res.ServerComponents(p) {
		byClass[cp.Class] += cp.Instances
	}
	// Sorted class order keeps repeated runs byte-identical.
	classes := make([]string, 0, len(byClass))
	for class := range byClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("  %-18s x%d\n", class, byClass[class])
	}
}
