// Benefits 3-tier re-partitioning: reproduces the paper's most surprising
// result (Figure 6). An experienced client/server programmer put the whole
// business layer on the middle tier; Coign discovers that many of those
// components are caches serving the client field-by-field, moves them to
// the client, and cuts communication by roughly a third — without touching
// the business logic, whose database traffic pins it to the data.
//
//	go run ./examples/benefits
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/apps/benefits"
	"repro/internal/core"
)

func main() {
	adps := core.New(benefits.New())
	rep, err := adps.ScenarioExperiment(context.Background(), benefits.ScenBigone)
	if err != nil {
		log.Fatal(err)
	}

	defaultMiddle := rep.TotalInstances - 9 // nine front-end components
	fmt.Printf("components in client + middle tier: %d\n", rep.TotalInstances)
	fmt.Printf("  programmer's middle tier: %d components\n", defaultMiddle)
	fmt.Printf("  Coign's middle tier:      %d components\n", rep.ServerInstances)
	fmt.Printf("  moved to the client:      %d (the caches)\n",
		defaultMiddle-rep.ServerInstances)
	fmt.Printf("communication: default %.3fs, Coign %.3fs (%.0f%% less)\n",
		rep.DefaultComm.Seconds(), rep.CoignComm.Seconds(), rep.Savings*100)

	// Which classes moved, which stayed?
	if err := adps.Instrument(); err != nil {
		log.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(benefits.ScenBigone, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	middle := map[string]int64{}
	client := map[string]int64{}
	for id, ci := range p.Classifications {
		m := res.Distribution[id]
		if m == 1 { // com.Server: the middle tier
			middle[ci.Class] += ci.Instances
		} else {
			client[ci.Class] += ci.Instances
		}
	}
	fmt.Println("\nstays on the middle tier (business logic):")
	printByClass(middle)
	fmt.Println("moves to the client (front end + caches):")
	printByClass(client)
}

// printByClass prints class instance counts in sorted class order, so
// repeated runs produce identical output.
func printByClass(counts map[string]int64) {
	classes := make([]string, 0, len(counts))
	for class := range counts {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("  %-18s x%d\n", class, counts[class])
	}
}
