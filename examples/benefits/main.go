// Benefits 3-tier re-partitioning: reproduces the paper's most surprising
// result (Figure 6). An experienced client/server programmer put the whole
// business layer on the middle tier; Coign discovers that many of those
// components are caches serving the client field-by-field, moves them to
// the client, and cuts communication by roughly a third — without touching
// the business logic, whose database traffic pins it to the data.
//
//	go run ./examples/benefits
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/benefits"
	"repro/internal/core"
)

func main() {
	adps := core.New(benefits.New())
	rep, err := adps.ScenarioExperiment(benefits.ScenBigone)
	if err != nil {
		log.Fatal(err)
	}

	defaultMiddle := rep.TotalInstances - 9 // nine front-end components
	fmt.Printf("components in client + middle tier: %d\n", rep.TotalInstances)
	fmt.Printf("  programmer's middle tier: %d components\n", defaultMiddle)
	fmt.Printf("  Coign's middle tier:      %d components\n", rep.ServerInstances)
	fmt.Printf("  moved to the client:      %d (the caches)\n",
		defaultMiddle-rep.ServerInstances)
	fmt.Printf("communication: default %.3fs, Coign %.3fs (%.0f%% less)\n",
		rep.DefaultComm.Seconds(), rep.CoignComm.Seconds(), rep.Savings*100)

	// Which classes moved, which stayed?
	if err := adps.Instrument(); err != nil {
		log.Fatal(err)
	}
	p, _, err := adps.ProfileScenario(benefits.ScenBigone, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := adps.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	middle := map[string]int64{}
	client := map[string]int64{}
	for id, ci := range p.Classifications {
		m := res.Distribution[id]
		if m == 1 { // com.Server: the middle tier
			middle[ci.Class] += ci.Instances
		} else {
			client[ci.Class] += ci.Instances
		}
	}
	fmt.Println("\nstays on the middle tier (business logic):")
	for class, n := range middle {
		fmt.Printf("  %-18s x%d\n", class, n)
	}
	fmt.Println("moves to the client (front end + caches):")
	for class, n := range client {
		fmt.Printf("  %-18s x%d\n", class, n)
	}
}
