// Remote store over real sockets: the repository's DCOM stand-in is not
// just a cost model — it is a working transport. This example hosts a
// component environment behind a loopback-TCP server, dials it, and drives
// the component through a proxy whose calls are marshaled with the NDR-like
// codec, framed, dispatched by a server-side stub, and unmarshaled back —
// then uses the same connection as a live measurement source for the
// network profiler.
//
//	go run ./examples/remotestore
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/com"
	"repro/internal/dist"
	"repro/internal/idl"
	"repro/internal/netsim"
)

func buildServerApp() (*com.App, *com.Env, uint64) {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IStore", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Read", Params: []idl.ParamDesc{
				{Name: "off", Dir: idl.In, Type: idl.TInt32},
				{Name: "n", Dir: idl.In, Type: idl.TInt32},
			}, Result: idl.TBytes},
			{Name: "Stat", Result: idl.Struct("FileInfo",
				idl.Field("size", idl.TInt64),
				idl.Field("blocks", idl.TInt32))},
		},
	})
	classes := com.NewClassRegistry()
	classes.Register(&com.Class{
		ID: "CLSID_Store", Name: "Store", Interfaces: []string{"IStore"},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				switch c.Method {
				case "Read":
					n := int(c.Args[1].AsInt())
					buf := make([]byte, n)
					for i := range buf {
						buf[i] = byte(int(c.Args[0].AsInt()) + i)
					}
					return []idl.Value{idl.ByteBuf(buf)}, nil
				case "Stat":
					fi := idl.Struct("FileInfo",
						idl.Field("size", idl.TInt64),
						idl.Field("blocks", idl.TInt32))
					return []idl.Value{idl.StructVal(fi, idl.Int64(1<<20), idl.Int32(256))}, nil
				}
				return nil, fmt.Errorf("Store: bad method %s", c.Method)
			})
		},
	})
	app := &com.App{Name: "remotestore", Classes: classes, Interfaces: ifaces}
	env := com.NewEnv(app)
	store, err := env.CreateInstance(nil, "CLSID_Store")
	if err != nil {
		log.Fatal(err)
	}
	return app, env, store.ID
}

func main() {
	app, env, storeID := buildServerApp()

	// Server side: a stub dispatches framed calls into the environment.
	stub := dist.NewStub(env)
	srv, err := dist.Serve("127.0.0.1:0", stub.Handle)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("component server listening on %s\n", srv.Addr())

	// Client side: a proxy that marshals through the wire protocol.
	conn, err := dist.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	proxy := dist.NewProxy(conn, app.Interfaces, "IStore", storeID)

	out, err := proxy.Invoke("Stat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote Stat: size=%d blocks=%d\n",
		out[0].Elems[0].AsInt(), out[0].Elems[1].AsInt())

	start := time.Now()
	total := 0
	for i := 0; i < 64; i++ {
		out, err := proxy.Invoke("Read", idl.Int32(int32(i*4096)), idl.Int32(4096))
		if err != nil {
			log.Fatal(err)
		}
		total += len(out[0].Bytes)
	}
	fmt.Printf("remote Read: %d bytes in %v over real TCP\n", total, time.Since(start))

	// The same connection feeds the network profiler.
	p, err := netsim.Sample("loopback-tcp", func(size int) time.Duration {
		d, err := conn.Ping(size)
		if err != nil {
			log.Fatal(err)
		}
		return d / 2
	}, netsim.DefaultSampleSizes, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network profile from live measurements: null=%v 64KB=%v\n",
		p.MessageTime(0), p.MessageTime(64<<10))
}
