// Quickstart: build a small component application against the synthetic
// COM substrate, then run the complete Coign pipeline on it — rewrite the
// binary, profile a scenario, analyze, and execute the chosen distribution
// — all without the application knowing.
//
//	go run ./examples/quickstart
//
// The application itself (a GUI viewer, a cruncher, and a server-side
// data store) lives in internal/apps/quickstart so the coverage gate and
// tests can drive the same binary.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/apps/quickstart"
	"repro/internal/com"
	"repro/internal/core"
)

func main() {
	app := quickstart.New()
	adps := core.New(app)

	// 1. The binary rewriter inserts the Coign runtime and a profiling
	//    configuration record.
	if err := adps.Instrument(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented binary: import[0]=%s\n", adps.Image.Imports[0])

	// 2. Scenario-based profiling measures inter-component communication.
	p, _, err := adps.ProfileScenario("default", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d calls across %d classifications\n",
		p.TotalCalls(), len(p.Classifications))

	// 2b. The reachability coverage diff shows what the scenario missed
	//     (run `go run ./cmd/coign coverage -app quickstart` for the full
	//     report).
	if adps.Reach != nil {
		cov := adps.Reach.Coverage(p)
		fmt.Printf("activation coverage: %.0f%% (%d uncovered edges)\n",
			cov.Percent(), len(cov.UncoveredEdges()))
	}

	// 3. The analysis engine cuts the concrete graph.
	res, err := adps.Analyze(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	for _, cp := range res.ServerComponents(p) {
		fmt.Printf("server-side component: %s\n", cp.Class)
	}
	fmt.Printf("predicted communication: %v (default %v, savings %.0f%%)\n",
		res.PredictedComm, res.DefaultComm, res.Savings()*100)

	// 4. The rewriter records the distribution; the lightweight runtime
	//    realizes it on the next execution.
	if err := adps.WriteDistribution(res); err != nil {
		log.Fatal(err)
	}
	coign, err := adps.RunDistributed("default", false)
	if err != nil {
		log.Fatal(err)
	}
	def, err := adps.RunDefault("default", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured communication: default %v, Coign %v\n",
		def.Clock.CommTime(), coign.Clock.CommTime())
	fmt.Printf("instances on server: %d of %d\n",
		coign.AppPerMachine[com.Server], coign.AppInstances)
}
