// Quickstart: build a small component application against the synthetic
// COM substrate, then run the complete Coign pipeline on it — rewrite the
// binary, profile a scenario, analyze, and execute the chosen distribution
// — all without the application knowing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/idl"
)

// buildApp assembles a three-component application: a GUI viewer, a
// cruncher, and a server-side data store. The cruncher reads a lot and
// reports a little — exactly the component Coign should move to the
// server.
func buildApp() *com.App {
	ifaces := idl.NewRegistry()
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IStore", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Read", Params: []idl.ParamDesc{{Name: "n", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TBytes},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "ICrunch", Remotable: true,
		Methods: []idl.MethodDesc{
			{Name: "Summarize", Params: []idl.ParamDesc{{Name: "blocks", Dir: idl.In, Type: idl.TInt32}}, Result: idl.TString},
		},
	})
	ifaces.Register(&idl.InterfaceDesc{
		IID: "IView", Remotable: false, // paints through an opaque device context
		Methods: []idl.MethodDesc{
			{Name: "Show", Params: []idl.ParamDesc{
				{Name: "text", Dir: idl.In, Type: idl.TString},
				{Name: "dc", Dir: idl.In, Type: idl.TOpaque},
			}, Result: idl.TVoid},
		},
	})

	classes := com.NewClassRegistry()
	store := &com.Class{
		ID: "CLSID_Store", Name: "Store", Interfaces: []string{"IStore"},
		APIs: []string{com.APIFileRead}, Home: com.Server, Infrastructure: true,
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				c.Compute(time.Millisecond)
				return []idl.Value{idl.ByteBuf(make([]byte, c.Args[0].AsInt()))}, nil
			})
		},
	}
	classes.Register(store)
	classes.Register(&com.Class{
		ID: "CLSID_Crunch", Name: "Crunch", Interfaces: []string{"ICrunch"},
		New: func() com.Object {
			var st *com.Interface
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				if st == nil {
					inst, err := c.Create("CLSID_Store")
					if err != nil {
						return nil, err
					}
					if st, err = c.Env.Query(inst, "IStore"); err != nil {
						return nil, err
					}
				}
				total := 0
				for i := int64(0); i < c.Args[0].AsInt(); i++ {
					out, err := c.Invoke(st, "Read", idl.Int32(64<<10))
					if err != nil {
						return nil, err
					}
					total += len(out[0].Bytes)
					c.Compute(5 * time.Millisecond)
				}
				return []idl.Value{idl.String(fmt.Sprintf("crunched %d bytes", total))}, nil
			})
		},
	})
	classes.Register(&com.Class{
		ID: "CLSID_View", Name: "View", Interfaces: []string{"IView"},
		APIs: []string{com.APIGdiPaint, com.APIUserWindow},
		New: func() com.Object {
			return com.ObjectFunc(func(c *com.Call) ([]idl.Value, error) {
				c.Compute(time.Millisecond)
				return []idl.Value{}, nil
			})
		},
	})

	app := &com.App{Name: "quickstart", Classes: classes, Interfaces: ifaces}
	app.Main = func(env *com.Env, scenario string, seed int64) error {
		crunch, err := env.CreateInstance(nil, "CLSID_Crunch")
		if err != nil {
			return err
		}
		view, err := env.CreateInstance(nil, "CLSID_View")
		if err != nil {
			return err
		}
		citf, err := env.Query(crunch, "ICrunch")
		if err != nil {
			return err
		}
		out, err := env.Call(nil, citf, "Summarize", idl.Int32(40))
		if err != nil {
			return err
		}
		vitf, err := env.Query(view, "IView")
		if err != nil {
			return err
		}
		_, err = env.Call(nil, vitf, "Show", out[0], idl.OpaquePtr("hdc"))
		return err
	}
	return app
}

func main() {
	app := buildApp()
	adps := core.New(app)

	// 1. The binary rewriter inserts the Coign runtime and a profiling
	//    configuration record.
	if err := adps.Instrument(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented binary: import[0]=%s\n", adps.Image.Imports[0])

	// 2. Scenario-based profiling measures inter-component communication.
	p, _, err := adps.ProfileScenario("default", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d calls across %d classifications\n",
		p.TotalCalls(), len(p.Classifications))

	// 3. The analysis engine cuts the concrete graph.
	res, err := adps.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	for _, cp := range res.ServerComponents(p) {
		fmt.Printf("server-side component: %s\n", cp.Class)
	}
	fmt.Printf("predicted communication: %v (default %v, savings %.0f%%)\n",
		res.PredictedComm, res.DefaultComm, res.Savings()*100)

	// 4. The rewriter records the distribution; the lightweight runtime
	//    realizes it on the next execution.
	if err := adps.WriteDistribution(res); err != nil {
		log.Fatal(err)
	}
	coign, err := adps.RunDistributed("default", false)
	if err != nil {
		log.Fatal(err)
	}
	def, err := adps.RunDefault("default", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured communication: default %v, Coign %v\n",
		def.Clock.CommTime(), coign.Clock.CommTime())
	fmt.Printf("instances on server: %d of %d\n",
		coign.AppPerMachine[com.Server], coign.AppInstances)
}
