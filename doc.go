// Package coign is a Go reproduction of "The Coign Automatic Distributed
// Partitioning System" (Galen C. Hunt and Michael L. Scott, OSDI 1999).
//
// Coign takes an application built from binary components, profiles its
// inter-component communication through usage scenarios, prices the
// resulting graph under a network profile, cuts it with the lift-to-front
// minimum-cut algorithm, and rewrites the application binary so that the
// next execution runs distributed across client and server — all without
// source code.
//
// The repository layout follows the paper's toolchain:
//
//	internal/idl       interface metadata, deep-copy measurement, wire codec
//	internal/com       the synthetic component object model
//	internal/binimg    application binary images and the binary rewriter
//	internal/rte       the Coign runtime executive (traps, wrapping, shadow stack)
//	internal/informer  profiling and distribution interface informers
//	internal/logger    profiling, event, and null information loggers
//	internal/classify  the seven instance classifiers
//	internal/profile   ICC profiles, size buckets, communication vectors
//	internal/netsim    network models and the network profiler
//	internal/graph     lift-to-front min-cut, Edmonds-Karp baseline, multiway heuristic
//	internal/analysis  the profile analysis engine and constraint inference
//	internal/factory   the component factory that realizes distributions
//	internal/dist      the two-machine execution engine, replayer, TCP transport
//	internal/core      the end-to-end ADPS pipeline
//	internal/apps/...  reconstructions of Octarine, PhotoDraw, and Benefits
//	internal/scenario  the 23-scenario profiling suite of Table 1
//	internal/experiments  regeneration of every table and figure in §4
//
// The benchmarks in this package regenerate the paper's evaluation; see
// EXPERIMENTS.md for paper-versus-measured numbers.
package coign
