package coign

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4). Each benchmark prints its exhibit once (go test -bench
// runs with -v show the rows) and reports headline values as benchmark
// metrics so regressions are visible in -benchmem output diffs.
//
//	go test -bench=. -benchmem
//
// Tables: 1 (scenario suite), 2 (classifier accuracy), 3 (stack depth),
// 4 (communication time), 5 (prediction accuracy). Figures: 4 (PhotoDraw),
// 5 (Octarine text), 6 (Benefits), 7 (Octarine table), 8 (Octarine mixed).
// Plus the §3.2 instrumentation-overhead measurements.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

var benchPrint sync.Map // exhibit name -> *sync.Once

func printOnce(name string, f func()) {
	v, _ := benchPrint.LoadOrStore(name, &sync.Once{})
	v.(*sync.Once).Do(f)
}

// BenchmarkTable1ScenarioSuite drives all twenty-three profiling scenarios
// through the instrumented runtime — the cost of one full profiling pass
// over the application suite.
func BenchmarkTable1ScenarioSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range scenario.Table1() {
			app, err := scenario.NewApp(s.App)
			if err != nil {
				b.Fatal(err)
			}
			res, err := dist.Run(dist.Config{
				App: app, Scenario: s.Name, Mode: dist.ModeProfiling,
				Classifier: classify.New(classify.IFCB, 0),
			})
			if err != nil {
				b.Fatalf("%s: %v", s.Name, err)
			}
			if res.Profile.TotalCalls() == 0 {
				b.Fatalf("%s: empty profile", s.Name)
			}
		}
	}
	printOnce("table1", func() {
		fmt.Fprintf(os.Stderr, "\nTable 1: %d profiling scenarios across 3 applications\n\n",
			len(scenario.Table1()))
	})
}

// BenchmarkTable2ClassifierAccuracy regenerates Table 2: all seven
// instance classifiers profiled on Octarine's scenario suite and evaluated
// on the bigone synthesis.
func BenchmarkTable2ClassifierAccuracy(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2("octarine")
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("table2", func() {
		fmt.Fprintln(os.Stderr, "\nTable 2 (classifier accuracy, Octarine):")
		experiments.PrintTable2(os.Stderr, rows)
	})
	for _, r := range rows {
		if r.Classifier == "ifcb" {
			b.ReportMetric(float64(r.ProfiledClassifications), "ifcb-classifications")
			b.ReportMetric(r.AvgCorrelation, "ifcb-correlation")
		}
		if r.Classifier == "incremental" {
			b.ReportMetric(float64(r.NewClassifications), "incremental-new")
		}
	}
}

// BenchmarkTable3StackDepth regenerates Table 3: IFCB accuracy as a
// function of stack-walk depth.
func BenchmarkTable3StackDepth(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3("octarine")
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("table3", func() {
		fmt.Fprintln(os.Stderr, "\nTable 3 (IFCB accuracy vs stack depth, Octarine):")
		experiments.PrintTable3(os.Stderr, rows)
	})
	b.ReportMetric(rows[len(rows)-1].AvgCorrelation, "complete-depth-correlation")
}

func benchTables45(b *testing.B) []experiments.ScenarioRow {
	var rows []experiments.ScenarioRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Tables4And5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	return rows
}

// BenchmarkTable4CommunicationTime regenerates Table 4: communication time
// for the default and Coign-chosen distributions of all 23 scenarios.
func BenchmarkTable4CommunicationTime(b *testing.B) {
	rows := benchTables45(b)
	printOnce("table4", func() {
		fmt.Fprintln(os.Stderr, "\nTable 4 (communication time):")
		experiments.PrintTable4(os.Stderr, rows)
	})
	var worst float64 = 0
	var best float64 = 0
	for _, r := range rows {
		if r.Savings > best {
			best = r.Savings
		}
		if float64(r.CoignComm) > float64(r.DefaultComm)*1.02 {
			worst++
		}
	}
	b.ReportMetric(best*100, "best-savings-%")
	b.ReportMetric(worst, "scenarios-worse-than-default")
}

// BenchmarkTable5PredictionAccuracy regenerates Table 5: predicted versus
// measured execution time for the Coign distributions.
func BenchmarkTable5PredictionAccuracy(b *testing.B) {
	rows := benchTables45(b)
	printOnce("table5", func() {
		fmt.Fprintln(os.Stderr, "\nTable 5 (prediction accuracy):")
		experiments.PrintTable5(os.Stderr, rows)
	})
	var maxErr float64
	for _, r := range rows {
		e := r.PredictionErr
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	b.ReportMetric(maxErr*100, "max-error-%")
}

func benchFigure(b *testing.B, name string, run func() (*experiments.ScenarioRow, error)) {
	var row *experiments.ScenarioRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(name, func() {
		fmt.Fprintf(os.Stderr, "\n%s (%s): %d of %d components on the server, savings %.0f%%\n",
			name, row.Scenario, row.ServerInstances, row.TotalInstances, row.Savings*100)
	})
	b.ReportMetric(float64(row.ServerInstances), "server-components")
	b.ReportMetric(float64(row.TotalInstances), "total-components")
	b.ReportMetric(row.Savings*100, "savings-%")
}

// BenchmarkFigure4PhotoDraw regenerates Figure 4: the PhotoDraw
// distribution (paper: 8 of 295 components on the server).
func BenchmarkFigure4PhotoDraw(b *testing.B) {
	benchFigure(b, "Figure 4", experiments.Figure4)
}

// BenchmarkFigure5Octarine regenerates Figure 5: the Octarine text
// distribution (paper: 2 of 458 components on the server).
func BenchmarkFigure5Octarine(b *testing.B) {
	benchFigure(b, "Figure 5", experiments.Figure5)
}

// BenchmarkFigure6Benefits regenerates Figure 6: the Benefits distribution
// (paper: Coign keeps 135 of 196 on the middle tier vs the programmer's 187).
func BenchmarkFigure6Benefits(b *testing.B) {
	benchFigure(b, "Figure 6", experiments.Figure6)
}

// BenchmarkFigure7OctarineTable regenerates Figure 7: the Octarine table
// distribution (paper: 1 of 476 components on the server).
func BenchmarkFigure7OctarineTable(b *testing.B) {
	benchFigure(b, "Figure 7", experiments.Figure7)
}

// BenchmarkFigure8OctarineMixed regenerates Figure 8: the Octarine mixed
// text+tables distribution (paper: 281 of 786 components on the server).
func BenchmarkFigure8OctarineMixed(b *testing.B) {
	benchFigure(b, "Figure 8", experiments.Figure8)
}

// BenchmarkProfilingOverhead measures the wall-clock cost of the profiling
// interface informer relative to the un-instrumented application (paper
// §3.2: up to 85%, typically ~45%).
func BenchmarkProfilingOverhead(b *testing.B) {
	var row *experiments.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.MeasureOverhead("o_oldwp7", 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("overhead", func() {
		fmt.Fprintf(os.Stderr, "\nInstrumentation overhead: %s\n", row)
	})
	b.ReportMetric(row.ProfilingOverhead*100, "profiling-overhead-%")
}

// BenchmarkDistributionInformerOverhead measures the lightweight
// distribution informer's overhead (paper §3.2: under 3%).
func BenchmarkDistributionInformerOverhead(b *testing.B) {
	var row *experiments.OverheadRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.MeasureOverhead("o_oldwp7", 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.DistributionOverhead*100, "distribution-overhead-%")
}

// BenchmarkAdaptiveRepartitioning measures §4.4's per-network re-analysis:
// one profile re-cut for five network generations.
func BenchmarkAdaptiveRepartitioning(b *testing.B) {
	var rows []experiments.AdaptiveRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Adaptive(context.Background(), "o_oldwp7",
			[]string{"ISDN", "10BaseT", "100BaseT", "ATM", "SAN"})
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce("adaptive", func() {
		fmt.Fprintln(os.Stderr, "\nAdaptive re-partitioning (o_oldwp7):")
		for _, r := range rows {
			fmt.Fprintf(os.Stderr, "  %-10s server-instances=%d predicted=%v savings=%.0f%%\n",
				r.Network, r.ServerInstances, r.PredictedComm, r.Savings*100)
		}
	})
}
