// Command netprof is the Coign network profiler: it statistically samples
// communication time for a representative set of message sizes and prints
// the resulting network profile (the cost model the profile analysis
// engine combines with abstract ICC data).
//
// Two sources are supported: the parametric network models used by the
// simulator (-model), and a real loopback-TCP transport (-tcp) in which
// every sample is an actual framed round trip through the DCOM-analog
// wire protocol.
//
// Usage:
//
//	netprof -model 10BaseT [-samples 25]
//	netprof -tcp [-samples 25]
//	netprof -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/netsim"
)

func main() {
	model := flag.String("model", "10BaseT", "network model to profile")
	useTCP := flag.Bool("tcp", false, "profile a real loopback-TCP transport instead of a model")
	samples := flag.Int("samples", 25, "samples per message size")
	seed := flag.Int64("seed", 1, "sampling seed")
	list := flag.Bool("list", false, "list available network models")
	flag.Parse()

	if *list {
		models := netsim.Models()
		names := make([]string, 0, len(models))
		for name := range models {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(models[name])
		}
		return
	}

	var p *netsim.Profile
	var err error
	if *useTCP {
		p, err = profileTCP(*samples)
	} else {
		var m *netsim.Model
		m, err = netsim.ByName(*model)
		if err == nil {
			rng := rand.New(rand.NewSource(*seed))
			p, err = netsim.SampleModel(m, rng, netsim.DefaultSampleSizes, *samples)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netprof:", err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %14s\n", "Bytes", "Message time")
	for _, pt := range p.Points {
		fmt.Printf("%-10d %14v\n", pt.Size, pt.Time)
	}
	fmt.Printf("\ninterpolated: 100B=%v  10KB=%v  1MB=%v\n",
		p.MessageTime(100), p.MessageTime(10<<10), p.MessageTime(1<<20))
}

// profileTCP measures real round trips through the loopback transport.
func profileTCP(samples int) (*netsim.Profile, error) {
	srv, err := dist.Serve("127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	conn, err := dist.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	measure := func(size int) time.Duration {
		d, err := conn.Ping(size)
		if err != nil {
			return 0
		}
		// One-way approximation: half the round trip.
		return d / 2
	}
	return netsim.Sample("loopback-tcp", measure, netsim.DefaultSampleSizes, samples)
}
