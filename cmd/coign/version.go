package main

import (
	"context"
	"fmt"

	"repro/internal/version"
)

func cmdVersion(_ context.Context, _ []string) error {
	fmt.Printf("coign %s (%s)\n", version.String(), version.Go())
	return nil
}
