package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/jobqueue"
	"repro/internal/service"
	"repro/internal/version"
)

// cmdServe runs the partitioning job service: a crash-safe on-disk job
// queue, a worker pool driving pipeline.Run, and the HTTP API. SIGTERM
// (or SIGINT) triggers a graceful drain — leasing stops, in-flight jobs
// get the -drain window to finish, and any still running are requeued for
// the next serve to pick up.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7090", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (pairs with -addr :0)")
	queuePath := fs.String("queue", "coign-jobs.jsonl", "job journal path")
	workers := fs.Int("workers", 2, "worker-pool width")
	drain := fs.Duration("drain", 30*time.Second, "shutdown grace for in-flight jobs")
	maxAttempts := fs.Int("max-attempts", 5, "dead-letter a job after this many attempts (0 = retry forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	q, err := jobqueue.Open(*queuePath, jobqueue.WithMaxAttempts(*maxAttempts))
	if err != nil {
		return err
	}
	defer q.Close()
	srv := service.New(q, service.WithWorkers(*workers), service.WithDrainTimeout(*drain))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Scripts using -addr :0 read the real port from here.
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	c := q.Stats()
	fmt.Printf("coign %s serving on http://%s (queue %s: %d pending, %d done; %d workers)\n",
		version.String(), bound, *queuePath, c.Pending, c.Done, *workers)

	hs := &http.Server{Handler: srv.Handler()}
	workersDone := make(chan struct{})
	go func() { srv.RunWorkers(ctx); close(workersDone) }()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("coign: signal received; draining workers")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		<-workersDone
		return err
	}
	<-workersDone
	fmt.Println("coign: drained")
	return nil
}
