package main

import (
	"context"
	"flag"
	"fmt"

	"repro/internal/adapt"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

func cmdAdapt(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to re-partition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Adaptive(ctx, *scen, []string{"ISDN", "10BaseT", "100BaseT", "ATM", "SAN"})
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %14s %14s %9s\n", "Network", "SrvInst", "Predicted", "Default", "Savings")
	for _, r := range rows {
		fmt.Printf("%-10s %10d %13.3fs %13.3fs %8.0f%%\n",
			r.Network, r.ServerInstances, r.PredictedComm.Seconds(),
			r.DefaultComm.Seconds(), r.Savings*100)
	}
	return nil
}

func cmdOverhead(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp0", "scenario to measure")
	reps := fs.Int("reps", 5, "repetitions (best-of)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	row, err := experiments.MeasureOverhead(*scen, *reps)
	if err != nil {
		return err
	}
	fmt.Println(row)
	return nil
}

func cmdDrift(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	optimized := fs.String("optimized-for", "o_oldwp0", "scenario the distribution was computed from")
	observed := fs.String("observed", "o_oldbth", "scenario representing actual usage")
	threshold := fs.Float64("threshold", 0.3, "drift threshold recommending re-profiling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := scenario.Lookup(*optimized)
	if err != nil {
		return err
	}
	if obsInfo, err := scenario.Lookup(*observed); err != nil {
		return err
	} else if obsInfo.App != info.App {
		return fmt.Errorf("scenarios belong to different applications (%s vs %s)", info.App, obsInfo.App)
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return err
	}
	baseline, _, err := adps.ProfileScenario(*optimized, false)
	if err != nil {
		return err
	}
	res, err := adps.Analyze(ctx, baseline)
	if err != nil {
		return err
	}
	w, err := adapt.NewWatchdog(baseline, *threshold, 50)
	if err != nil {
		return err
	}
	if _, err := dist.Run(dist.Config{
		App: app, Scenario: *observed, Mode: dist.ModeCoign,
		Classifier:   classify.New(adps.ClassifierKind, 0),
		Distribution: res.Distribution,
		ExtraLogger:  w.Logger(),
	}); err != nil {
		return err
	}
	fmt.Printf("distribution optimized for %s, observed usage %s\n", *optimized, *observed)
	fmt.Printf("  drift: %.3f (threshold %.2f) — re-profile: %v\n",
		w.Drift(), *threshold, w.ShouldReprofile())
	for _, d := range w.TopDivergences(5) {
		fmt.Printf("  %-40s -> %-40s profiled %.1f%% observed %.1f%%\n",
			d.Src, d.Dst, d.ProfiledShare*100, d.ObservedShare*100)
	}
	return nil
}

func cmdCache(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to measure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmp, err := experiments.CompareCaching(*scen)
	if err != nil {
		return err
	}
	fmt.Printf("%s with per-interface caching:\n", cmp.Scenario)
	fmt.Printf("  plain:  %.3fs\n", cmp.Plain.Seconds())
	fmt.Printf("  cached: %.3fs (%d hits, %.0f%% further savings)\n",
		cmp.Cached.Seconds(), cmp.CacheHits, cmp.Savings*100)
	return nil
}
