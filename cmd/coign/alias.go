package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// cmdAlias runs the static alias & shared-state analysis over one or all
// applications: compute the points-to sets of every component's opaque
// payloads, report which class pairs truly share mutable state, refine
// the static constraint set with that knowledge, and verify zero-miss
// against the profiled scenarios (every observed non-remotable call must
// have been predicted).
func cmdAlias(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("alias", flag.ExitOnError)
	appName := fs.String("app", "all", "application to analyze, 'quickstart', or 'all'")
	scens := fs.String("scenarios", "", "comma-separated scenario override (default: the app's training suite)")
	jsonOut := fs.Bool("json", false, "emit the alias rows as JSON on stdout")
	failOn := fs.String("fail-on", "", "fail (exit nonzero) on: 'miss'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failOn != "" && *failOn != "miss" {
		return fmt.Errorf("unknown -fail-on condition %q (supported: miss)", *failOn)
	}
	apps := experiments.AliasApps()
	if *appName != "all" {
		apps = []string{*appName}
	}
	var scenarios []string
	if *scens != "" {
		if len(apps) != 1 {
			return fmt.Errorf("-scenarios requires a single -app")
		}
		scenarios = strings.Split(*scens, ",")
	}

	var rows []*experiments.AliasRow
	if *appName == "all" {
		all, err := experiments.AliasAll(ctx)
		if err != nil {
			return err
		}
		rows = all
	} else {
		for _, name := range apps {
			row, err := experiments.Alias(ctx, name, scenarios)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		for _, row := range rows {
			if err := row.Report.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("  constraints: %d pair-wise baseline -> %d refined, %d aliasing pairs added\n",
				row.BaselinePairs, row.RefinedPairs, row.AliasPairs)
			if len(row.Scenarios) > 0 {
				fmt.Printf("  profiled %v: %d welded class pairs baseline -> %d refined\n",
					row.Scenarios, row.BaselineWelds, row.RefinedWelds)
				fmt.Printf("  verifier: %d alias misses, %d warnings\n", row.Misses, row.Warnings)
			}
			fmt.Println()
		}
	}

	if *failOn == "miss" {
		var failed []string
		for _, row := range rows {
			if row.Misses > 0 {
				failed = append(failed, fmt.Sprintf("%s (%d)", row.App, row.Misses))
			}
		}
		if len(failed) > 0 {
			return fmt.Errorf("alias misses: %s", strings.Join(failed, ", "))
		}
	}
	return nil
}
