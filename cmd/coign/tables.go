package main

import (
	"context"
	"flag"
	"os"

	"repro/internal/experiments"
)

func cmdTable2(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	app := fs.String("app", "octarine", "application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Table2(*app)
	if err != nil {
		return err
	}
	experiments.PrintTable2(os.Stdout, rows)
	return nil
}

func cmdTable3(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	app := fs.String("app", "octarine", "application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Table3(*app)
	if err != nil {
		return err
	}
	experiments.PrintTable3(os.Stdout, rows)
	return nil
}

func cmdTable4(ctx context.Context, args []string) error { return cmdTables(ctx, args, false) }
func cmdTable5(ctx context.Context, args []string) error { return cmdTables(ctx, args, true) }

func cmdTables(ctx context.Context, _ []string, five bool) error {
	rows, err := experiments.Tables4And5(ctx)
	if err != nil {
		return err
	}
	if five {
		experiments.PrintTable5(os.Stdout, rows)
	} else {
		experiments.PrintTable4(os.Stdout, rows)
	}
	return nil
}

func cmdFigures(ctx context.Context, _ []string) error {
	rows, err := experiments.Figures(ctx)
	if err != nil {
		return err
	}
	experiments.PrintFigures(os.Stdout, rows)
	return nil
}
