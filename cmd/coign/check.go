package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/staticanal"
)

func cmdCheck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	appName := fs.String("app", "all", "application to analyze, or 'all'")
	verify := fs.Bool("verify", true, "profile the training scenarios and cross-check the static prediction")
	jsonPath := fs.String("json", "", "write the full reports as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	apps := scenario.Apps()
	if *appName != "all" {
		apps = []string{*appName}
	}

	var rows []*experiments.CheckRow
	for _, name := range apps {
		var scenarios []string
		if *verify {
			scenarios = scenario.TrainingForApp(name)
		}
		row, err := experiments.Check(ctx, name, scenarios)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}

	violations := 0
	for _, row := range rows {
		if err := row.Report.WriteText(os.Stdout); err != nil {
			return err
		}
		if len(row.Scenarios) > 0 {
			fmt.Printf("  verified against %v: %d pinned, %d statically welded, %d warnings, %d violations\n",
				row.Scenarios, row.Pinned, row.Welded, row.Warnings, row.Violations)
		}
		violations += row.Violations
		fmt.Println()
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		reports := make([]*staticanal.Report, len(rows))
		for i, row := range rows {
			reports[i] = row.Report
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if violations > 0 {
		return fmt.Errorf("%d constraint violation(s)", violations)
	}
	return nil
}
