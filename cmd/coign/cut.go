package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/pipeline"
)

// parsePins turns the CLI's 'Class=client,Class2=server' syntax into the
// pipeline's pin map. Machine validation happens in Spec.Normalized.
func parsePins(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	pins := map[string]string{}
	for _, entry := range strings.Split(s, ",") {
		parts := strings.SplitN(entry, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -pin entry %q (want Class=client|server)", entry)
		}
		pins[parts[0]] = parts[1]
	}
	return pins, nil
}

// cmdCut profiles one or more scenarios and prints (or emits as JSON) the
// distribution the analysis engine chooses. It is a thin veneer over
// pipeline.Run: the same spec submitted to the job service yields exactly
// the bytes -json prints here.
func cmdCut(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("cut", flag.ExitOnError)
	appName := fs.String("app", "", "application name (default: inferred from the first scenario; required for synth:... apps)")
	scens := fs.String("scenario", "o_oldwp7", "comma-separated scenarios to partition (one application)")
	network := fs.String("network", "10BaseT", "network model")
	classifier := fs.String("classifier", "ifcb", "instance classifier")
	depth := fs.Int("depth", 0, "classifier stack depth (0 = complete)")
	verbose := fs.Bool("v", false, "list server-side classifications")
	dotPath := fs.String("dot", "", "write the distribution figure as Graphviz DOT")
	pins := fs.String("pin", "", "programmer constraints, e.g. 'TextProps=client,DocReader=server'")
	coverage := fs.Bool("coverage", false, "weld statically reachable but unprofiled edges before cutting")
	replicate := fs.Bool("replicate", false, "also cut the replication-aware network")
	theta := fs.Float64("theta", 0, "read-mostly purity threshold (0 = default)")
	exact := fs.Bool("exact", false, "price edges from exact byte totals instead of buckets")
	jsonOut := fs.Bool("json", false, "emit the result as canonical JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pinMap, err := parsePins(*pins)
	if err != nil {
		return err
	}
	spec := pipeline.Spec{
		App:          *appName,
		Scenarios:    strings.Split(*scens, ","),
		Network:      *network,
		Classifier:   *classifier,
		Depth:        *depth,
		Pins:         pinMap,
		Coverage:     *coverage,
		Replicate:    *replicate,
		Theta:        *theta,
		ExactPricing: *exact,
	}
	res, err := pipeline.Run(ctx, spec)
	if err != nil {
		return err
	}
	if *jsonOut {
		return pipeline.EncodeJSON(os.Stdout, res)
	}
	if err := res.WriteText(os.Stdout); err != nil {
		return err
	}
	if *verbose {
		res.WriteServerPlacements(os.Stdout)
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		title := strings.Join(res.Spec.Scenarios, "+") + " on " + res.Spec.Network
		if err := res.Analysis.WriteDOT(f, res.Profile, title); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (render with: neato -Tsvg %s)\n", *dotPath, *dotPath)
	}
	return nil
}

// cmdRun runs the full end-to-end experiment for one scenario — write the
// distribution into the binary, execute default and Coign placements,
// measure — via the pipeline's compare mode.
func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to run")
	jsonOut := fs.Bool("json", false, "emit the result as canonical JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := pipeline.Run(ctx, pipeline.Spec{Scenarios: []string{*scen}, Compare: true})
	if err != nil {
		return err
	}
	if *jsonOut {
		return pipeline.EncodeJSON(os.Stdout, res)
	}
	return res.WriteText(os.Stdout)
}
