// Command coign is the Coign ADPS toolchain driver: it instruments
// application binaries, runs profiling scenarios, analyzes profiles,
// writes distributions back into binaries, executes distributed
// applications, regenerates every table and figure of the paper's
// evaluation, and serves the whole pipeline as a persistent job service.
//
// Every subcommand lives in its own file and ultimately drives
// internal/pipeline (or the experiments harness built on it), so the CLI
// and the job service produce identical results for identical specs.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// command is one coign subcommand. The context is cancelled on SIGINT or
// SIGTERM, so long experiments and the serve loop shut down cleanly.
type command struct {
	name    string
	summary string
	run     func(ctx context.Context, args []string) error
}

var commands = []command{
	{"list", "print the profiling-scenario suite (Table 1)", cmdList},
	{"cut", "profile scenarios and print the chosen distribution", cmdCut},
	{"run", "full experiment for one scenario (Tables 4 and 5 rows)", cmdRun},
	{"table2", "classifier accuracy (Table 2)", cmdTable2},
	{"table3", "IFCB accuracy vs stack-walk depth (Table 3)", cmdTable3},
	{"table4", "communication time for all 23 scenarios (Table 4)", cmdTable4},
	{"table5", "execution-time prediction accuracy (Table 5)", cmdTable5},
	{"figures", "distribution figures 4-8", cmdFigures},
	{"chaos", "run one scenario under injected network faults with retries", cmdChaos},
	{"adapt", "re-partition one scenario across network generations", cmdAdapt},
	{"overhead", "instrumentation overhead measurements", cmdOverhead},
	{"drift", "watchdog: detect usage drift from the profiled scenarios", cmdDrift},
	{"cache", "per-interface caching (semi-custom marshaling) effect", cmdCache},
	{"bench-cut", "cut-engine benchmark sweep over synthetic ICC graphs", cmdBenchCut},
	{"check", "static constraint analysis: remotability, pins, co-location", cmdCheck},
	{"coverage", "diff static activation reachability against profiled scenarios", cmdCoverage},
	{"purity", "static state-mutability analysis and the replication-aware cut", cmdPurity},
	{"alias", "points-to analysis over opaque payloads: shared state, refined constraints", cmdAlias},
	{"instrument", "rewrite an application binary for profiling", cmdInstrument},
	{"profile", "run profiling scenarios and write .icc log files", cmdProfile},
	{"analyze", "combine .icc log files and print the chosen distribution", cmdAnalyze},
	{"synth", "generate a synthetic application, or sweep the property harness", cmdSynth},
	{"serve", "run the partitioning job service (HTTP API + worker pool)", cmdServe},
	{"version", "print the build version", cmdVersion},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name, args := os.Args[1], os.Args[2:]
	if name == "help" || name == "-h" || name == "--help" {
		usage()
		return
	}
	var cmd *command
	for i := range commands {
		if commands[i].name == name {
			cmd = &commands[i]
			break
		}
	}
	if cmd == nil {
		fmt.Fprintf(os.Stderr, "coign: unknown command %q\n", name)
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := cmd.run(ctx, args); err != nil {
		fmt.Fprintln(os.Stderr, "coign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: coign <command> [flags]")
	fmt.Fprintln(os.Stderr)
	fmt.Fprintln(os.Stderr, "commands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", c.name, c.summary)
	}
}
