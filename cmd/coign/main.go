// Command coign is the Coign ADPS toolchain driver: it instruments
// application binaries, runs profiling scenarios, analyzes profiles,
// writes distributions back into binaries, executes distributed
// applications, and regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	coign list                                   print the scenario suite (Table 1)
//	coign cut -scenario o_oldwp7 [-network N]    profile+analyze one scenario, print the distribution
//	coign run -scenario o_oldwp7 [-network N]    full experiment: default vs Coign vs prediction
//	coign table2 [-app octarine]                 classifier accuracy (Table 2)
//	coign table3 [-app octarine]                 IFCB accuracy vs stack depth (Table 3)
//	coign table4                                 communication time, all scenarios (Table 4)
//	coign table5                                 prediction accuracy, all scenarios (Table 5)
//	coign figures                                distribution figures 4-8
//	coign chaos -scenario o_oldwp7 [-drop 0.05]  run under injected network faults
//	coign adapt -scenario o_oldwp7               re-partition across network generations (§4.4)
//	coign overhead [-scenario o_oldwp0]          instrumentation overhead (§3.2)
//	coign bench-cut [-sizes 1000,...,100000]     cut-engine benchmark on synthetic ICC graphs
//	coign check [-app all] [-json out.json]      static constraint analysis + verification
//	coign coverage [-app all] [-fail-under 70]   activation-reachability scenario coverage
//	coign purity [-app all] [-fail-on misclassified]  state-mutability analysis + replication grading
//	coign instrument -app octarine -o app.img    rewrite a binary for profiling
//	coign synth -family skewed -seed 7 [-o f.img]  generate a synthetic application
//	coign synth -harness -seeds 20 [-json]       full-pipeline property sweep
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/binimg"
	"repro/internal/classify"
	"repro/internal/com"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/logger"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/purity"
	"repro/internal/reach"
	"repro/internal/scenario"
	"repro/internal/staticanal"
	"repro/internal/synthapp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "cut":
		err = cmdCut(args)
	case "run":
		err = cmdRun(args)
	case "table2":
		err = cmdTable2(args)
	case "table3":
		err = cmdTable3(args)
	case "table4":
		err = cmdTables(args, false)
	case "table5":
		err = cmdTables(args, true)
	case "figures":
		err = cmdFigures()
	case "chaos":
		err = cmdChaos(args)
	case "adapt":
		err = cmdAdapt(args)
	case "overhead":
		err = cmdOverhead(args)
	case "drift":
		err = cmdDrift(args)
	case "cache":
		err = cmdCache(args)
	case "profile":
		err = cmdProfile(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "bench-cut":
		err = cmdBenchCut(args)
	case "check":
		err = cmdCheck(args)
	case "coverage":
		err = cmdCoverage(args)
	case "purity":
		err = cmdPurity(args)
	case "instrument":
		err = cmdInstrument(args)
	case "synth":
		err = cmdSynth(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "coign: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: coign <command> [flags]

commands:
  list        print the profiling-scenario suite (Table 1)
  cut         profile one scenario and print the chosen distribution
  run         full experiment for one scenario (Tables 4 and 5 rows)
  table2      classifier accuracy (Table 2)
  table3      IFCB accuracy vs stack-walk depth (Table 3)
  table4      communication time for all 23 scenarios (Table 4)
  table5      execution-time prediction accuracy (Table 5)
  figures     distribution figures 4-8
  chaos       run one scenario under injected network faults with retries
  adapt       re-partition one scenario across network generations
  overhead    instrumentation overhead measurements
  drift       watchdog: detect usage drift from the profiled scenarios
  cache       per-interface caching (semi-custom marshaling) effect
  bench-cut   cut-engine benchmark sweep over synthetic ICC graphs
  check       static constraint analysis: remotability, pins, co-location
  coverage    diff static activation reachability against profiled scenarios
  purity      static state-mutability analysis, component grading, and the
              replication-aware cut
  instrument  rewrite an application binary for profiling
  profile     run profiling scenarios and write .icc log files
  analyze     combine .icc log files and print the chosen distribution
  synth       generate a synthetic application, or sweep the pipeline
              property harness over the generator families`)
}

func cmdList() error {
	fmt.Printf("%-10s %-10s %s\n", "Scenario", "App", "Description")
	for _, s := range scenario.Table1() {
		fmt.Printf("%-10s %-10s %s\n", s.Name, s.App, s.Description)
	}
	return nil
}

func cmdCut(args []string) error {
	fs := flag.NewFlagSet("cut", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to partition")
	network := fs.String("network", "10BaseT", "network model")
	classifier := fs.String("classifier", "ifcb", "instance classifier")
	verbose := fs.Bool("v", false, "list server-side classifications")
	dotPath := fs.String("dot", "", "write the distribution figure as Graphviz DOT")
	pins := fs.String("pin", "", "programmer constraints, e.g. 'TextProps=client,DocReader=server'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return err
	}
	model, err := netsim.ByName(*network)
	if err != nil {
		return err
	}
	kind, err := classify.KindByName(*classifier)
	if err != nil {
		return err
	}
	adps := core.New(app)
	adps.Network = model
	adps.ClassifierKind = kind
	if err := adps.Instrument(); err != nil {
		return err
	}
	p, _, err := adps.ProfileScenario(*scen, false)
	if err != nil {
		return err
	}
	// Programmer-supplied absolute constraints (paper §4.3): pin every
	// classification of the named classes.
	if *pins != "" {
		adps.AnalysisOptions.ExtraPins = map[string]com.Machine{}
		for _, spec := range strings.Split(*pins, ",") {
			parts := strings.SplitN(spec, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -pin entry %q (want Class=client|server)", spec)
			}
			var m com.Machine
			switch parts[1] {
			case "client":
				m = com.Client
			case "server":
				m = com.Server
			default:
				return fmt.Errorf("bad -pin machine %q", parts[1])
			}
			matched := 0
			for id, ci := range p.Classifications {
				if ci.Class == parts[0] {
					adps.AnalysisOptions.ExtraPins[id] = m
					matched++
				}
			}
			if matched == 0 {
				return fmt.Errorf("-pin %s matched no classifications", parts[0])
			}
		}
	}
	res, err := adps.Analyze(p)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%s classifier)\n", *scen, model.Name, kind)
	fmt.Printf("  classifications: %d client, %d server (%d constrained, %d non-remotable edges)\n",
		res.ClientClassifications, res.ServerClassifications, res.Constrained, res.NonRemotableEdges)
	fmt.Printf("  instances:       %d client, %d server\n", res.ClientInstances, res.ServerInstances)
	fmt.Printf("  predicted comm:  %v (default %v, savings %.0f%%)\n",
		res.PredictedComm, res.DefaultComm, res.Savings()*100)
	if *verbose {
		for _, cp := range res.ServerComponents(p) {
			fmt.Printf("  server: %-20s x%d\n", cp.Class, cp.Instances)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteDOT(f, p, *scen+" on "+model.Name); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (render with: neato -Tsvg %s)\n", *dotPath, *dotPath)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	row, err := experiments.RunScenario(*scen)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s)\n", row.Scenario, row.App)
	fmt.Printf("  components:        %d total, %d on server\n", row.TotalInstances, row.ServerInstances)
	fmt.Printf("  communication:     default %.3fs, Coign %.3fs (savings %.0f%%)\n",
		row.DefaultComm.Seconds(), row.CoignComm.Seconds(), row.Savings*100)
	fmt.Printf("  execution:         predicted %.1fs, measured %.1fs (error %+.1f%%)\n",
		row.PredictedExec.Seconds(), row.MeasuredExec.Seconds(), row.PredictionErr*100)
	fmt.Printf("  violations:        %d\n", row.Violations)
	if row.DefaultViolations > 0 {
		fmt.Printf("  default infeasible: splits %d co-location constraint(s); default time is a lower bound\n",
			row.DefaultViolations)
	}
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	app := fs.String("app", "octarine", "application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Table2(*app)
	if err != nil {
		return err
	}
	experiments.PrintTable2(os.Stdout, rows)
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	app := fs.String("app", "octarine", "application")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Table3(*app)
	if err != nil {
		return err
	}
	experiments.PrintTable3(os.Stdout, rows)
	return nil
}

func cmdTables(args []string, five bool) error {
	rows, err := experiments.Tables4And5()
	if err != nil {
		return err
	}
	if five {
		experiments.PrintTable5(os.Stdout, rows)
	} else {
		experiments.PrintTable4(os.Stdout, rows)
	}
	return nil
}

func cmdFigures() error {
	rows, err := experiments.Figures()
	if err != nil {
		return err
	}
	experiments.PrintFigures(os.Stdout, rows)
	return nil
}

// cmdChaos runs one scenario in its default distribution over a lossy
// network: cross-machine messages are dropped/corrupted per the configured
// (or model-derived) rates and retransmitted with backoff. The same seed
// always produces the same fault schedule.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to run")
	network := fs.String("network", "10BaseT", "network model")
	drop := fs.Float64("drop", 0.05, "per-message drop probability")
	corrupt := fs.Float64("corrupt", 0.05, "per-message corruption probability")
	timeout := fs.Duration("timeout", 250*time.Millisecond, "virtual wait charged per dropped message")
	attempts := fs.Int("attempts", 4, "delivery attempts per message (1 disables retries)")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "initial retransmission backoff (doubles per attempt)")
	seed := fs.Int64("seed", 1, "fault-schedule seed (same seed, same faults)")
	fromModel := fs.Bool("from-model", false, "derive drop/corrupt rates from the network model's loss figure")
	trace := fs.Bool("trace", false, "print every injected fault")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return err
	}
	model, err := netsim.ByName(*network)
	if err != nil {
		return err
	}
	pol := &dist.FaultPolicy{
		Rates:       fault.Rates{Drop: *drop, Corrupt: *corrupt},
		Timeout:     *timeout,
		MaxAttempts: *attempts,
		Backoff:     *backoff,
	}
	if *fromModel {
		pol.Rates = fault.FromModel(model)
	}
	var ev *logger.EventLogger
	if *trace {
		ev = logger.NewEventLogger(os.Stdout)
	}
	cfg := dist.Config{
		App:        app,
		Scenario:   *scen,
		Seed:       *seed,
		Mode:       dist.ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
		Network:    model,
		Faults:     pol,
	}
	if ev != nil {
		cfg.ExtraLogger = ev
	}
	res, err := dist.Run(cfg)
	if err != nil {
		if errors.Is(err, dist.ErrTimeout) {
			fmt.Printf("%s on %s (drop %.1f%%, corrupt %.1f%%, %d attempt(s), seed %d)\n",
				*scen, model.Name, pol.Rates.Drop*100, pol.Rates.Corrupt*100, *attempts, *seed)
			fmt.Printf("  outcome: FAILED — %v\n", err)
			return nil
		}
		return err
	}
	fmt.Printf("%s on %s (drop %.1f%%, corrupt %.1f%%, %d attempt(s), seed %d)\n",
		*scen, model.Name, pol.Rates.Drop*100, pol.Rates.Corrupt*100, *attempts, *seed)
	fmt.Printf("  outcome:   completed (%d components, %d messages, %d bytes)\n",
		res.Instances, res.Clock.Messages(), res.Clock.Bytes())
	fmt.Printf("  comm time: %v (compute %v)\n", res.Clock.CommTime(), res.Clock.ComputeTime())
	fmt.Printf("  faults:    %d drops, %d corruptions, %d retries, %d giveups\n",
		res.FaultDrops, res.FaultCorruptions, res.Retries, res.FaultGiveUps)
	return nil
}

func cmdAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to re-partition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Adaptive(*scen, []string{"ISDN", "10BaseT", "100BaseT", "ATM", "SAN"})
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %14s %14s %9s\n", "Network", "SrvInst", "Predicted", "Default", "Savings")
	for _, r := range rows {
		fmt.Printf("%-10s %10d %13.3fs %13.3fs %8.0f%%\n",
			r.Network, r.ServerInstances, r.PredictedComm.Seconds(),
			r.DefaultComm.Seconds(), r.Savings*100)
	}
	return nil
}

func cmdOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp0", "scenario to measure")
	reps := fs.Int("reps", 5, "repetitions (best-of)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	row, err := experiments.MeasureOverhead(*scen, *reps)
	if err != nil {
		return err
	}
	fmt.Println(row)
	return nil
}

func cmdDrift(args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	optimized := fs.String("optimized-for", "o_oldwp0", "scenario the distribution was computed from")
	observed := fs.String("observed", "o_oldbth", "scenario representing actual usage")
	threshold := fs.Float64("threshold", 0.3, "drift threshold recommending re-profiling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := scenario.Lookup(*optimized)
	if err != nil {
		return err
	}
	if obsInfo, err := scenario.Lookup(*observed); err != nil {
		return err
	} else if obsInfo.App != info.App {
		return fmt.Errorf("scenarios belong to different applications (%s vs %s)", info.App, obsInfo.App)
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return err
	}
	baseline, _, err := adps.ProfileScenario(*optimized, false)
	if err != nil {
		return err
	}
	res, err := adps.Analyze(baseline)
	if err != nil {
		return err
	}
	w, err := adapt.NewWatchdog(baseline, *threshold, 50)
	if err != nil {
		return err
	}
	if _, err := dist.Run(dist.Config{
		App: app, Scenario: *observed, Mode: dist.ModeCoign,
		Classifier:   classify.New(adps.ClassifierKind, 0),
		Distribution: res.Distribution,
		ExtraLogger:  w.Logger(),
	}); err != nil {
		return err
	}
	fmt.Printf("distribution optimized for %s, observed usage %s\n", *optimized, *observed)
	fmt.Printf("  drift: %.3f (threshold %.2f) — re-profile: %v\n",
		w.Drift(), *threshold, w.ShouldReprofile())
	for _, d := range w.TopDivergences(5) {
		fmt.Printf("  %-40s -> %-40s profiled %.1f%% observed %.1f%%\n",
			d.Src, d.Dst, d.ProfiledShare*100, d.ObservedShare*100)
	}
	return nil
}

func cmdCache(args []string) error {
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to measure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cmp, err := experiments.CompareCaching(*scen)
	if err != nil {
		return err
	}
	fmt.Printf("%s with per-interface caching:\n", cmp.Scenario)
	fmt.Printf("  plain:  %.3fs\n", cmp.Plain.Seconds())
	fmt.Printf("  cached: %.3fs (%d hits, %.0f%% further savings)\n",
		cmp.Cached.Seconds(), cmp.CacheHits, cmp.Savings*100)
	return nil
}

// cmdCoverage diffs the static activation-reachability graph of one or
// all applications against their profiled training scenarios: which
// statically possible activation sites and ICC edges the scenarios never
// exercised, and which observations the static metadata failed to
// predict.
func cmdCoverage(args []string) error {
	fs := flag.NewFlagSet("coverage", flag.ExitOnError)
	appName := fs.String("app", "all", "application to measure, 'quickstart', or 'all'")
	scens := fs.String("scenarios", "", "comma-separated scenario override (default: the app's training suite)")
	jsonOut := fs.Bool("json", false, "emit the coverage reports as JSON on stdout")
	failUnder := fs.Float64("fail-under", 0, "fail (exit nonzero) when combined coverage is below this percentage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	apps := scenario.Apps()
	if *appName != "all" {
		apps = []string{*appName}
	}
	var scenarios []string
	if *scens != "" {
		if len(apps) != 1 {
			return fmt.Errorf("-scenarios requires a single -app")
		}
		scenarios = strings.Split(*scens, ",")
	}

	var rows []*experiments.CoverageRow
	for _, name := range apps {
		row, err := experiments.Coverage(name, scenarios)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}

	if *jsonOut {
		reports := make([]*reach.Coverage, len(rows))
		for i, row := range rows {
			reports[i] = row.Coverage
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, row := range rows {
			if err := row.Coverage.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("  (profiled %v; %d reachable classes; %d uncovered edges installable as co-location constraints)\n\n",
				row.Scenarios, row.Reachable, row.Installed)
		}
	}

	var failed []string
	for _, row := range rows {
		if row.Percent < *failUnder {
			failed = append(failed, fmt.Sprintf("%s %.1f%%", row.App, row.Percent))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("coverage below %.1f%%: %s", *failUnder, strings.Join(failed, ", "))
	}
	return nil
}

// cmdPurity runs the static purity & state-mutability analysis over one
// or all applications: classify every method from the binary's state
// records, fold in profiled call/write evidence to grade each component
// stateless/read-mostly/stateful, verify the static claims against
// observed mutations, and compare the plain cut with the
// replication-aware one.
func cmdPurity(args []string) error {
	fs := flag.NewFlagSet("purity", flag.ExitOnError)
	appName := fs.String("app", "all", "application to analyze, 'quickstart', or 'all'")
	scens := fs.String("scenarios", "", "comma-separated scenario override (default: the app's training suite)")
	theta := fs.Float64("theta", 0, fmt.Sprintf("read-mostly write-fraction threshold (0 selects %.2f)", purity.DefaultTheta))
	jsonOut := fs.Bool("json", false, "emit the purity rows as JSON on stdout")
	failOn := fs.String("fail-on", "", "fail (exit nonzero) on: 'misclassified'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failOn != "" && *failOn != "misclassified" {
		return fmt.Errorf("unknown -fail-on condition %q (supported: misclassified)", *failOn)
	}
	apps := experiments.PurityApps()
	if *appName != "all" {
		apps = []string{*appName}
	}
	var scenarios []string
	if *scens != "" {
		if len(apps) != 1 {
			return fmt.Errorf("-scenarios requires a single -app")
		}
		scenarios = strings.Split(*scens, ",")
	}

	var rows []*experiments.PurityRow
	for _, name := range apps {
		row, err := experiments.Purity(name, scenarios, *theta)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		for _, row := range rows {
			fmt.Printf("%s: %d classes (%d with state descriptors, %d locally pure), theta %.2f\n",
				row.App, row.Classes, row.WithDescriptor, row.LocallyPure, row.Theta)
			if g := row.Grading; g != nil {
				fmt.Printf("  graded %d components: %d stateless, %d read-mostly, %d stateful\n",
					len(g.Components), g.Stateless, g.ReadMostly, g.Stateful)
				for _, cg := range g.Components {
					if cg.Grade != purity.GradeStateful {
						fmt.Printf("    %-12s %-24s %s (%s)\n", cg.Grade, cg.Classification, cg.Class, cg.Provenance)
					}
				}
				fmt.Printf("  cut %.6fs plain vs %.6fs replicated (%d components cloned)\n",
					row.CutWeight, row.ReplicatedWeight, len(row.Replicated))
			}
			fmt.Printf("  verifier: %d misclassified, %d warnings\n\n", row.Misclassified, row.Warnings)
		}
	}

	if *failOn == "misclassified" {
		var failed []string
		for _, row := range rows {
			if row.Misclassified > 0 {
				failed = append(failed, fmt.Sprintf("%s (%d)", row.App, row.Misclassified))
			}
		}
		if len(failed) > 0 {
			return fmt.Errorf("purity misclassifications: %s", strings.Join(failed, ", "))
		}
	}
	return nil
}

func cmdInstrument(args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ExitOnError)
	appName := fs.String("app", "octarine", "application")
	out := fs.String("o", "", "output image path (default <app>.img)")
	classifier := fs.String("classifier", "ifcb", "instance classifier")
	depth := fs.Int("depth", 0, "classifier stack depth (0 = complete)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := scenario.NewApp(*appName)
	if err != nil {
		return err
	}
	kind, err := classify.KindByName(*classifier)
	if err != nil {
		return err
	}
	adps := core.New(app)
	adps.ClassifierKind = kind
	adps.ClassifierDepth = *depth
	if err := adps.Instrument(); err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *appName + ".img"
	}
	if err := adps.Image.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote instrumented binary %s (%d bytes of code, %d imports, %s in slot 0)\n",
		path, adps.Image.CodeBytes(), len(adps.Image.Imports), adps.Image.Imports[0])
	return nil
}

// cmdSynth drives the synthetic-application generator: list the families,
// emit one generated application (optionally as a binary image), or sweep
// the full-pipeline property harness over the whole seed matrix — the
// mode the CI pipeline-property job runs.
func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	list := fs.Bool("list", false, "list the generator families and exit")
	family := fs.String("family", string(synthapp.ThreeTier), "generator family")
	seed := fs.Int64("seed", 0, "generator seed")
	scale := fs.Int("scale", 1, fmt.Sprintf("size multiplier (1..%d)", synthapp.MaxScale))
	out := fs.String("o", "", "write the generated application's binary image to this path")
	harness := fs.Bool("harness", false, "run the full-pipeline property harness over every family")
	seeds := fs.Int("seeds", 20, "harness: seeds per family")
	jsonOut := fs.Bool("json", false, "harness: emit the matrix summary as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Printf("%-15s %-24s %s\n", "Family", "Training", "Bigone")
		for _, fam := range synthapp.Families() {
			sa, err := synthapp.Generate(synthapp.Config{Family: fam})
			if err != nil {
				return err
			}
			fmt.Printf("%-15s %-24s %s\n", fam, strings.Join(sa.Training, ","), sa.Bigone)
		}
		return nil
	}
	if *harness {
		sum, err := experiments.RunPipelineMatrix(*seeds, *scale)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sum); err != nil {
				return err
			}
		} else {
			fmt.Printf("pipeline property matrix: %d families x %d seeds = %d runs, %d failed\n",
				len(sum.Families), sum.SeedsPerFamily, sum.Runs, sum.Failed)
			for _, rep := range sum.Reports {
				for _, c := range rep.Checks {
					if !c.OK {
						fmt.Printf("  FAIL %s seed %d: %s: %s\n", rep.Family, rep.Seed, c.Name, c.Detail)
					}
				}
			}
		}
		if sum.Failed > 0 {
			return fmt.Errorf("%d of %d pipeline property runs failed", sum.Failed, sum.Runs)
		}
		return nil
	}

	sa, err := synthapp.Generate(synthapp.Config{
		Family: synthapp.Family(*family), Seed: *seed, Scale: *scale,
	})
	if err != nil {
		return err
	}
	if err := synthapp.Validate(sa.App); err != nil {
		return err
	}
	img := binimg.BuildImage(sa.App)
	var buf bytes.Buffer
	if err := img.Encode(&buf); err != nil {
		return err
	}
	fmt.Printf("%s: %d classes, %d interfaces, training %s, bigone %s\n",
		sa.App.Name, sa.App.Classes.Len(), len(sa.App.Interfaces.IIDs()),
		strings.Join(sa.Training, ","), sa.Bigone)
	fmt.Printf("image: %d bytes, sha256 %x\n", buf.Len(), sha256.Sum256(buf.Bytes()))
	if sa.PlantsInfeasibleDefault {
		fmt.Println("plants: infeasible default distribution (expect DefaultViolations > 0)")
	}
	for _, pair := range sa.LatentPairs {
		fmt.Printf("plants: latent activation %s -> %s (uncovered by training scenarios)\n",
			pair[0], pair[1])
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing image: %w", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// cmdProfile runs one or more profiling scenarios and writes each run's
// inter-component communication log to a .icc file, the paper's
// post-profiling artifact.
func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	scens := fs.String("scenarios", "o_oldwp0", "comma-separated scenarios (one application)")
	dir := fs.String("dir", ".", "directory for .icc log files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*scens, ",")
	first, err := scenario.Lookup(names[0])
	if err != nil {
		return err
	}
	app, err := scenario.NewApp(first.App)
	if err != nil {
		return err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return err
	}
	for _, name := range names {
		info, err := scenario.Lookup(name)
		if err != nil {
			return err
		}
		if info.App != first.App {
			return fmt.Errorf("scenario %s belongs to %s, not %s", name, info.App, first.App)
		}
		p, _, err := adps.ProfileScenario(name, false)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, name+".icc")
		if err := p.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d calls, %d classifications\n",
			path, p.TotalCalls(), len(p.Classifications))
	}
	return nil
}

// cmdAnalyze combines profiling logs and prints the distribution the
// analysis engine chooses.
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	logs := fs.String("logs", "", "comma-separated .icc log files")
	network := fs.String("network", "10BaseT", "network model")
	verbose := fs.Bool("v", false, "list server-side classifications")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logs == "" {
		return fmt.Errorf("analyze requires -logs")
	}
	var combined *profile.Profile
	for _, path := range strings.Split(*logs, ",") {
		p, err := profile.ReadFile(path)
		if err != nil {
			return err
		}
		if combined == nil {
			combined = p
			continue
		}
		p.OffsetInstanceIDs(combined.MaxInstanceID())
		if err := combined.Merge(p); err != nil {
			return err
		}
	}
	app, err := scenario.NewApp(combined.App)
	if err != nil {
		return err
	}
	model, err := netsim.ByName(*network)
	if err != nil {
		return err
	}
	adps := core.New(app)
	adps.Network = model
	res, err := adps.Analyze(combined)
	if err != nil {
		return err
	}
	fmt.Printf("%s from logs of %v on %s\n", combined.App, combined.Scenarios, model.Name)
	fmt.Printf("  instances:      %d client, %d server\n", res.ClientInstances, res.ServerInstances)
	fmt.Printf("  predicted comm: %v (default %v, savings %.0f%%)\n",
		res.PredictedComm, res.DefaultComm, res.Savings()*100)
	if *verbose {
		for _, cp := range res.ServerComponents(combined) {
			fmt.Printf("  server: %-20s x%d\n", cp.Class, cp.Instances)
		}
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	appName := fs.String("app", "all", "application to analyze, or 'all'")
	verify := fs.Bool("verify", true, "profile the training scenarios and cross-check the static prediction")
	jsonPath := fs.String("json", "", "write the full reports as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	apps := scenario.Apps()
	if *appName != "all" {
		apps = []string{*appName}
	}

	var rows []*experiments.CheckRow
	for _, name := range apps {
		var scenarios []string
		if *verify {
			scenarios = scenario.TrainingForApp(name)
		}
		row, err := experiments.Check(name, scenarios)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}

	violations := 0
	for _, row := range rows {
		if err := row.Report.WriteText(os.Stdout); err != nil {
			return err
		}
		if len(row.Scenarios) > 0 {
			fmt.Printf("  verified against %v: %d pinned, %d statically welded, %d warnings, %d violations\n",
				row.Scenarios, row.Pinned, row.Welded, row.Warnings, row.Violations)
		}
		violations += row.Violations
		fmt.Println()
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		reports := make([]*staticanal.Report, len(rows))
		for i, row := range rows {
			reports[i] = row.Report
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if violations > 0 {
		return fmt.Errorf("%d constraint violation(s)", violations)
	}
	return nil
}
