package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/binimg"
	"repro/internal/experiments"
	"repro/internal/synthapp"
)

// cmdSynth drives the synthetic-application generator: list the families,
// emit one generated application (optionally as a binary image), or sweep
// the full-pipeline property harness over the whole seed matrix — the
// mode the CI pipeline-property job runs.
func cmdSynth(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	list := fs.Bool("list", false, "list the generator families and exit")
	family := fs.String("family", string(synthapp.ThreeTier), "generator family")
	seed := fs.Int64("seed", 0, "generator seed")
	scale := fs.Int("scale", 1, fmt.Sprintf("size multiplier (1..%d)", synthapp.MaxScale))
	out := fs.String("o", "", "write the generated application's binary image to this path")
	harness := fs.Bool("harness", false, "run the full-pipeline property harness over every family")
	seeds := fs.Int("seeds", 20, "harness: seeds per family")
	jsonOut := fs.Bool("json", false, "harness: emit the matrix summary as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Printf("%-15s %-24s %s\n", "Family", "Training", "Bigone")
		for _, fam := range synthapp.Families() {
			sa, err := synthapp.Generate(synthapp.Config{Family: fam})
			if err != nil {
				return err
			}
			fmt.Printf("%-15s %-24s %s\n", fam, strings.Join(sa.Training, ","), sa.Bigone)
		}
		return nil
	}
	if *harness {
		sum, err := experiments.RunPipelineMatrix(ctx, *seeds, *scale)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(sum); err != nil {
				return err
			}
		} else {
			fmt.Printf("pipeline property matrix: %d families x %d seeds = %d runs, %d failed\n",
				len(sum.Families), sum.SeedsPerFamily, sum.Runs, sum.Failed)
			for _, rep := range sum.Reports {
				for _, c := range rep.Checks {
					if !c.OK {
						fmt.Printf("  FAIL %s seed %d: %s: %s\n", rep.Family, rep.Seed, c.Name, c.Detail)
					}
				}
			}
		}
		if sum.Failed > 0 {
			return fmt.Errorf("%d of %d pipeline property runs failed", sum.Failed, sum.Runs)
		}
		return nil
	}

	sa, err := synthapp.Generate(synthapp.Config{
		Family: synthapp.Family(*family), Seed: *seed, Scale: *scale,
	})
	if err != nil {
		return err
	}
	if err := synthapp.Validate(sa.App); err != nil {
		return err
	}
	img := binimg.BuildImage(sa.App)
	var buf bytes.Buffer
	if err := img.Encode(&buf); err != nil {
		return err
	}
	fmt.Printf("%s: %d classes, %d interfaces, training %s, bigone %s\n",
		sa.App.Name, sa.App.Classes.Len(), len(sa.App.Interfaces.IIDs()),
		strings.Join(sa.Training, ","), sa.Bigone)
	fmt.Printf("image: %d bytes, sha256 %x\n", buf.Len(), sha256.Sum256(buf.Bytes()))
	if sa.PlantsInfeasibleDefault {
		fmt.Println("plants: infeasible default distribution (expect DefaultViolations > 0)")
	}
	for _, pair := range sa.LatentPairs {
		fmt.Printf("plants: latent activation %s -> %s (uncovered by training scenarios)\n",
			pair[0], pair[1])
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing image: %w", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}
