package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/classify"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/logger"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// cmdChaos runs one scenario in its default distribution over a lossy
// network: cross-machine messages are dropped/corrupted per the configured
// (or model-derived) rates and retransmitted with backoff. The same seed
// always produces the same fault schedule.
func cmdChaos(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scen := fs.String("scenario", "o_oldwp7", "scenario to run")
	network := fs.String("network", "10BaseT", "network model")
	drop := fs.Float64("drop", 0.05, "per-message drop probability")
	corrupt := fs.Float64("corrupt", 0.05, "per-message corruption probability")
	timeout := fs.Duration("timeout", 250*time.Millisecond, "virtual wait charged per dropped message")
	attempts := fs.Int("attempts", 4, "delivery attempts per message (1 disables retries)")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "initial retransmission backoff (doubles per attempt)")
	seed := fs.Int64("seed", 1, "fault-schedule seed (same seed, same faults)")
	fromModel := fs.Bool("from-model", false, "derive drop/corrupt rates from the network model's loss figure")
	trace := fs.Bool("trace", false, "print every injected fault")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := scenario.Lookup(*scen)
	if err != nil {
		return err
	}
	app, err := scenario.NewApp(info.App)
	if err != nil {
		return err
	}
	model, err := netsim.ByName(*network)
	if err != nil {
		return err
	}
	pol := &dist.FaultPolicy{
		Rates:       fault.Rates{Drop: *drop, Corrupt: *corrupt},
		Timeout:     *timeout,
		MaxAttempts: *attempts,
		Backoff:     *backoff,
	}
	if *fromModel {
		pol.Rates = fault.FromModel(model)
	}
	var ev *logger.EventLogger
	if *trace {
		ev = logger.NewEventLogger(os.Stdout)
	}
	cfg := dist.Config{
		App:        app,
		Scenario:   *scen,
		Seed:       *seed,
		Mode:       dist.ModeDefault,
		Classifier: classify.New(classify.IFCB, 0),
		Network:    model,
		Faults:     pol,
	}
	if ev != nil {
		cfg.ExtraLogger = ev
	}
	res, err := dist.Run(cfg)
	if err != nil {
		if errors.Is(err, dist.ErrTimeout) {
			fmt.Printf("%s on %s (drop %.1f%%, corrupt %.1f%%, %d attempt(s), seed %d)\n",
				*scen, model.Name, pol.Rates.Drop*100, pol.Rates.Corrupt*100, *attempts, *seed)
			fmt.Printf("  outcome: FAILED — %v\n", err)
			return nil
		}
		return err
	}
	fmt.Printf("%s on %s (drop %.1f%%, corrupt %.1f%%, %d attempt(s), seed %d)\n",
		*scen, model.Name, pol.Rates.Drop*100, pol.Rates.Corrupt*100, *attempts, *seed)
	fmt.Printf("  outcome:   completed (%d components, %d messages, %d bytes)\n",
		res.Instances, res.Clock.Messages(), res.Clock.Bytes())
	fmt.Printf("  comm time: %v (compute %v)\n", res.Clock.CommTime(), res.Clock.ComputeTime())
	fmt.Printf("  faults:    %d drops, %d corruptions, %d retries, %d giveups\n",
		res.FaultDrops, res.FaultCorruptions, res.Retries, res.FaultGiveUps)
	return nil
}
