package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// cmdBenchCut sweeps the cut engine over synthetic ICC graphs, printing a
// table and optionally writing the machine-readable report that CI
// archives. The run fails when any algorithm disagrees with the oracle,
// so the benchmark doubles as a correctness gate.
func cmdBenchCut(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("bench-cut", flag.ExitOnError)
	sizes := fs.String("sizes", "1000,3000,10000,30000,100000,300000,1000000", "comma-separated node counts")
	seed := fs.Int64("seed", 1, "workload seed (same seed, same graphs)")
	degree := fs.Int("degree", 0, "average attachment degree (0 = generator default)")
	oracleMax := fs.Int("oracle-max", 30000, "largest size the Edmonds-Karp oracle runs at (0 = default cap)")
	oldMax := fs.Int("old-max", 0, "largest size the legacy relabel-to-front path runs at (0 = default cap 100000, negative = unlimited)")
	repeat := fs.Int("repeat", 3, "timed repetitions per algorithm (min and mean reported)")
	jsonPath := fs.String("json", "", "write the report as JSON to this file")
	quiet := fs.Bool("q", false, "suppress per-size progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.CutBenchConfig{
		Seed:      *seed,
		AvgDegree: *degree,
		OracleMax: *oracleMax,
		OldMax:    *oldMax,
		Repeat:    *repeat,
	}
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			return fmt.Errorf("bad -sizes entry %q", s)
		}
		cfg.Sizes = append(cfg.Sizes, n)
	}
	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	rep, err := experiments.RunCutBench(cfg, progress)
	if err != nil {
		return err
	}
	experiments.PrintCutBench(os.Stdout, rep)
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}
