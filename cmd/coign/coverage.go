package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/purity"
	"repro/internal/reach"
	"repro/internal/scenario"
)

// cmdCoverage diffs the static activation-reachability graph of one or
// all applications against their profiled training scenarios: which
// statically possible activation sites and ICC edges the scenarios never
// exercised, and which observations the static metadata failed to
// predict.
func cmdCoverage(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("coverage", flag.ExitOnError)
	appName := fs.String("app", "all", "application to measure, 'quickstart', or 'all'")
	scens := fs.String("scenarios", "", "comma-separated scenario override (default: the app's training suite)")
	jsonOut := fs.Bool("json", false, "emit the coverage reports as JSON on stdout")
	failUnder := fs.Float64("fail-under", 0, "fail (exit nonzero) when combined coverage is below this percentage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	apps := scenario.Apps()
	if *appName != "all" {
		apps = []string{*appName}
	}
	var scenarios []string
	if *scens != "" {
		if len(apps) != 1 {
			return fmt.Errorf("-scenarios requires a single -app")
		}
		scenarios = strings.Split(*scens, ",")
	}

	var rows []*experiments.CoverageRow
	for _, name := range apps {
		row, err := experiments.Coverage(name, scenarios)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}

	if *jsonOut {
		reports := make([]*reach.Coverage, len(rows))
		for i, row := range rows {
			reports[i] = row.Coverage
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, row := range rows {
			if err := row.Coverage.WriteText(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("  (profiled %v; %d reachable classes; %d uncovered edges installable as co-location constraints)\n\n",
				row.Scenarios, row.Reachable, row.Installed)
		}
	}

	var failed []string
	for _, row := range rows {
		if row.Percent < *failUnder {
			failed = append(failed, fmt.Sprintf("%s %.1f%%", row.App, row.Percent))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("coverage below %.1f%%: %s", *failUnder, strings.Join(failed, ", "))
	}
	return nil
}

// cmdPurity runs the static purity & state-mutability analysis over one
// or all applications: classify every method from the binary's state
// records, fold in profiled call/write evidence to grade each component
// stateless/read-mostly/stateful, verify the static claims against
// observed mutations, and compare the plain cut with the
// replication-aware one.
func cmdPurity(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("purity", flag.ExitOnError)
	appName := fs.String("app", "all", "application to analyze, 'quickstart', or 'all'")
	scens := fs.String("scenarios", "", "comma-separated scenario override (default: the app's training suite)")
	theta := fs.Float64("theta", 0, fmt.Sprintf("read-mostly write-fraction threshold (0 selects %.2f)", purity.DefaultTheta))
	jsonOut := fs.Bool("json", false, "emit the purity rows as JSON on stdout")
	failOn := fs.String("fail-on", "", "fail (exit nonzero) on: 'misclassified'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failOn != "" && *failOn != "misclassified" {
		return fmt.Errorf("unknown -fail-on condition %q (supported: misclassified)", *failOn)
	}
	apps := experiments.PurityApps()
	if *appName != "all" {
		apps = []string{*appName}
	}
	var scenarios []string
	if *scens != "" {
		if len(apps) != 1 {
			return fmt.Errorf("-scenarios requires a single -app")
		}
		scenarios = strings.Split(*scens, ",")
	}

	var rows []*experiments.PurityRow
	for _, name := range apps {
		row, err := experiments.Purity(ctx, name, scenarios, *theta)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		for _, row := range rows {
			fmt.Printf("%s: %d classes (%d with state descriptors, %d locally pure), theta %.2f\n",
				row.App, row.Classes, row.WithDescriptor, row.LocallyPure, row.Theta)
			if g := row.Grading; g != nil {
				fmt.Printf("  graded %d components: %d stateless, %d read-mostly, %d stateful\n",
					len(g.Components), g.Stateless, g.ReadMostly, g.Stateful)
				for _, cg := range g.Components {
					if cg.Grade != purity.GradeStateful {
						fmt.Printf("    %-12s %-24s %s (%s)\n", cg.Grade, cg.Classification, cg.Class, cg.Provenance)
					}
				}
				fmt.Printf("  cut %.6fs plain vs %.6fs replicated (%d components cloned)\n",
					row.CutWeight, row.ReplicatedWeight, len(row.Replicated))
			}
			fmt.Printf("  verifier: %d misclassified, %d warnings\n\n", row.Misclassified, row.Warnings)
		}
	}

	if *failOn == "misclassified" {
		var failed []string
		for _, row := range rows {
			if row.Misclassified > 0 {
				failed = append(failed, fmt.Sprintf("%s (%d)", row.App, row.Misclassified))
			}
		}
		if len(failed) > 0 {
			return fmt.Errorf("purity misclassifications: %s", strings.Join(failed, ", "))
		}
	}
	return nil
}
