package main

import (
	"context"
	"flag"
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/scenario"
)

func cmdInstrument(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ExitOnError)
	appName := fs.String("app", "octarine", "application")
	out := fs.String("o", "", "output image path (default <app>.img)")
	classifier := fs.String("classifier", "ifcb", "instance classifier")
	depth := fs.Int("depth", 0, "classifier stack depth (0 = complete)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	app, err := scenario.NewApp(*appName)
	if err != nil {
		return err
	}
	kind, err := classify.KindByName(*classifier)
	if err != nil {
		return err
	}
	adps := core.New(app)
	adps.ClassifierKind = kind
	adps.ClassifierDepth = *depth
	if err := adps.Instrument(); err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *appName + ".img"
	}
	if err := adps.Image.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote instrumented binary %s (%d bytes of code, %d imports, %s in slot 0)\n",
		path, adps.Image.CodeBytes(), len(adps.Image.Imports), adps.Image.Imports[0])
	return nil
}

// cmdProfile runs one or more profiling scenarios and writes each run's
// inter-component communication log to a .icc file, the paper's
// post-profiling artifact.
func cmdProfile(_ context.Context, args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	scens := fs.String("scenarios", "o_oldwp0", "comma-separated scenarios (one application)")
	dir := fs.String("dir", ".", "directory for .icc log files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*scens, ",")
	first, err := scenario.Lookup(names[0])
	if err != nil {
		return err
	}
	app, err := scenario.NewApp(first.App)
	if err != nil {
		return err
	}
	adps := core.New(app)
	if err := adps.Instrument(); err != nil {
		return err
	}
	for _, name := range names {
		info, err := scenario.Lookup(name)
		if err != nil {
			return err
		}
		if info.App != first.App {
			return fmt.Errorf("scenario %s belongs to %s, not %s", name, info.App, first.App)
		}
		p, _, err := adps.ProfileScenario(name, false)
		if err != nil {
			return err
		}
		path := filepath.Join(*dir, name+".icc")
		if err := p.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d calls, %d classifications\n",
			path, p.TotalCalls(), len(p.Classifications))
	}
	return nil
}

// cmdAnalyze combines profiling logs and prints the distribution the
// analysis engine chooses. Unlike cut, it consumes pre-recorded .icc
// files instead of profiling scenarios itself.
func cmdAnalyze(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	logs := fs.String("logs", "", "comma-separated .icc log files")
	network := fs.String("network", "10BaseT", "network model")
	verbose := fs.Bool("v", false, "list server-side classifications")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logs == "" {
		return fmt.Errorf("analyze requires -logs")
	}
	var combined *profile.Profile
	for _, path := range strings.Split(*logs, ",") {
		p, err := profile.ReadFile(path)
		if err != nil {
			return err
		}
		if combined == nil {
			combined = p
			continue
		}
		p.OffsetInstanceIDs(combined.MaxInstanceID())
		if err := combined.Merge(p); err != nil {
			return err
		}
	}
	app, err := scenario.NewApp(combined.App)
	if err != nil {
		return err
	}
	model, err := netsim.ByName(*network)
	if err != nil {
		return err
	}
	adps := core.New(app)
	adps.Network = model
	res, err := adps.Analyze(ctx, combined)
	if err != nil {
		return err
	}
	fmt.Printf("%s from logs of %v on %s\n", combined.App, combined.Scenarios, model.Name)
	fmt.Printf("  instances:      %d client, %d server\n", res.ClientInstances, res.ServerInstances)
	fmt.Printf("  predicted comm: %v (default %v, savings %.0f%%)\n",
		res.PredictedComm, res.DefaultComm, res.Savings()*100)
	if *verbose {
		for _, cp := range res.ServerComponents(combined) {
			fmt.Printf("  server: %-20s x%d\n", cp.Class, cp.Instances)
		}
	}
	return nil
}
