package main

import (
	"context"
	"fmt"

	"repro/internal/scenario"
)

func cmdList(_ context.Context, _ []string) error {
	fmt.Printf("%-10s %-10s %s\n", "Scenario", "App", "Description")
	for _, s := range scenario.Table1() {
		fmt.Printf("%-10s %-10s %s\n", s.Name, s.App, s.Description)
	}
	return nil
}
